//! Plan execution over relational encodings of the node store.
//!
//! The executor evaluates a [`Plan`] bottom-up (with memoisation over the
//! DAG) into [`Table`]s.  Its most important entry point for the
//! reproduction is [`Executor::run_fixpoint`]: given a compiled recursion
//! body plan and a seed node set, it drives the Naïve (`µ`) or Delta (`µ∆`)
//! iteration and records how many rows were fed back into the body — the
//! quantity Table 2 of the paper reports.
//!
//! ## Data plane
//!
//! The body plan is re-evaluated once per fixpoint iteration, so the
//! per-row representation is the hot path.  Three choices keep it
//! allocation-free:
//!
//! * **Typed keys.**  Every table cell is a [`Key`] — a `Copy` word that is
//!   a node id, an interned string symbol, an integer or a boolean.
//!   Selections, joins, difference, grouping and duplicate elimination all
//!   hash and compare `Key`s directly; nothing is stringified per row, and
//!   a string cell can never collide with a node or boolean cell (the old
//!   `as_key()` rendering made `"node:5"` join against node 5).
//! * **Interning.**  Strings enter the plane once through the executor's
//!   [`Interner`] (attribute values, `string()` results, literals) and are
//!   symbols from then on.  The pool lives as long as the executor, so a
//!   per-item loop pays each distinct string once across *all* seeds.
//! * **Columnar, shared storage.**  A [`Table`] is a list of
//!   `Arc<Vec<Key>>` columns.  Cloning a table — what every memo hit,
//!   static-cache hit and `RecInput` reference does — bumps one reference
//!   count per column instead of deep-copying rows, and projection just
//!   re-arranges column handles.
//!
//! The executor itself no longer borrows the store: every entry point takes
//! `&mut NodeStore`, so one executor (with its interner and its
//! rec-independent static cache) can outlive any number of fixpoint runs —
//! the prepared-query layer keeps one per compiled occurrence for the whole
//! per-item Table-2 loop, invalidating the static cache only when the
//! store's [document-load epoch](NodeStore::load_epoch) moves.
//!
//! ## Parallel batched runs
//!
//! [`Executor::run_fixpoint_batched`] can shard its per-seed work across OS
//! threads ([`Executor::set_threads`]).  Internally every evaluation path
//! goes through an internal `StoreRef` — exclusive for the sequential paths, shared
//! read-only for parallel shards — and the parallel path is gated on the
//! body being construction-free ([`Plan::contains_construct`]), because
//! `Construct` is the one operator that mutates the store.  Shards respect
//! seed grouping and merge at the iteration barrier, so results are
//! bit-identical to the sequential driver.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use xqy_xdm::{shard, CowStore, DocId, Interner, NodeId, NodeSet, NodeStore, StoreMut, StrId};

use crate::error::AlgebraError;
use crate::plan::{FunKind, Operator, Plan, PlanNodeId, SEED_COLUMN};
use crate::Result;

/// A cell value at the executor's API boundary, with strings materialized.
///
/// Inside tables every cell is a [`Key`]; `Value` is the convenience used
/// to build literals and read results without touching the interner at
/// every call site.  Convert with [`Value::key`] / [`Key::value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A node reference.
    Node(NodeId),
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Encode into the typed key representation, interning strings.
    pub fn key(&self, interner: &mut Interner) -> Key {
        match self {
            Value::Node(n) => Key::Node(*n),
            Value::Str(s) => Key::Sym(interner.intern(s)),
            Value::Int(i) => Key::Int(*i),
            Value::Bool(b) => Key::Bool(*b),
        }
    }

    /// The node, if this value is one.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }
}

/// A typed, `Copy` table cell — also the key the executor selects, joins,
/// groups and deduplicates on.
///
/// Keys compare by variant *and* payload: `Sym("node:5")` never equals
/// `Node(5)` and `Sym("true")` never equals `Bool(true)`, which is the
/// typed fix for the tag-collision hazard of the old string rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A node reference.
    Node(NodeId),
    /// An interned string (resolve through the executor's [`Interner`]).
    Sym(StrId),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Key {
    /// The node, if this key is one.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Key::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// Decode into a [`Value`], materializing interned strings.
    pub fn value(&self, interner: &Interner) -> Value {
        match self {
            Key::Node(n) => Value::Node(*n),
            Key::Sym(s) => Value::Str(interner.resolve(*s).to_string()),
            Key::Int(i) => Value::Int(*i),
            Key::Bool(b) => Value::Bool(*b),
        }
    }

    /// The interned string behind this key, if it is a symbol.
    pub fn as_str<'i>(&self, interner: &'i Interner) -> Option<&'i str> {
        match self {
            Key::Sym(s) => Some(interner.resolve(*s)),
            _ => None,
        }
    }
}

/// A flat relational table: named columns of [`Key`]s in columnar storage.
///
/// Columns are `Arc`-shared: `clone()` is O(columns) reference-count bumps
/// and mutation copies only the columns it touches (projection copies
/// none).  The executor works with *set* semantics: operators that would
/// produce duplicate rows may keep them, but the fixpoint driver always
/// reduces its accumulator to a set of nodes, matching the set-based IFP
/// semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names (shared across derived tables).
    names: Arc<Vec<String>>,
    /// Column data; `cols[c][r]` is row `r`'s value in column `c`.
    cols: Vec<Arc<Vec<Key>>>,
    /// Number of rows (every column has exactly this many entries).
    rows: usize,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        let cols = columns.iter().map(|_| Arc::new(Vec::new())).collect();
        Table {
            names: Arc::new(columns),
            cols,
            rows: 0,
        }
    }

    /// A table from column names and column-major data.
    ///
    /// # Panics
    /// Panics (in debug builds) when the column counts or lengths disagree.
    pub fn from_columns(columns: Vec<String>, cols: Vec<Vec<Key>>) -> Self {
        debug_assert_eq!(columns.len(), cols.len());
        let rows = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        // Fresh column-major materialization: the relational `Table` growth
        // point of the per-query memory accounting (shared-handle reuse via
        // `with_schema` charges nothing).
        xqy_xdm::budget::charge((rows * cols.len() * std::mem::size_of::<Key>()) as u64);
        Table {
            names: Arc::new(columns),
            cols: cols.into_iter().map(Arc::new).collect(),
            rows,
        }
    }

    /// Internal constructor reusing an existing schema handle.
    fn with_schema(names: Arc<Vec<String>>, cols: Vec<Arc<Vec<Key>>>) -> Self {
        let rows = cols.first().map_or(0, |c| c.len());
        debug_assert_eq!(names.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        Table { names, cols, rows }
    }

    /// A single-column `item` table of nodes.
    pub fn from_nodes(nodes: &[NodeId]) -> Self {
        Table::from_columns(
            vec!["item".to_string()],
            vec![nodes.iter().map(|&n| Key::Node(n)).collect()],
        )
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.names
    }

    /// Index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.names.iter().position(|c| c == name).ok_or_else(|| {
            AlgebraError::Execution(format!(
                "column '{name}' not found (have: {})",
                self.names.join(", ")
            ))
        })
    }

    /// Borrow a column's cells.
    pub fn col(&self, idx: usize) -> &[Key] {
        &self.cols[idx]
    }

    /// The cell at (`row`, `col`).
    pub fn key(&self, row: usize, col: usize) -> Key {
        self.cols[col][row]
    }

    /// The cell at (`row`, `col`) decoded through `interner`.
    pub fn value(&self, row: usize, col: usize, interner: &Interner) -> Value {
        self.key(row, col).value(interner)
    }

    /// One row, materialized (test/debug convenience — the executor itself
    /// never builds row vectors).
    pub fn row(&self, row: usize) -> Vec<Key> {
        self.cols.iter().map(|c| c[row]).collect()
    }

    /// `true` when `self` and `other` are views of the *same* column
    /// storage (every column pair is `Arc`-pointer-equal).  This is how
    /// tests verify that memo and static-cache hits hand out shared
    /// handles instead of deep copies.
    pub fn shares_storage(&self, other: &Table) -> bool {
        !self.cols.is_empty()
            && self.cols.len() == other.cols.len()
            && self
                .cols
                .iter()
                .zip(&other.cols)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// The node values of the `item` column (non-node rows are skipped).
    pub fn item_nodes(&self) -> Vec<NodeId> {
        let Ok(idx) = self.column_index("item") else {
            return Vec::new();
        };
        self.cols[idx].iter().filter_map(Key::as_node).collect()
    }

    /// Deduplicate rows (set semantics).  `Key`s hash directly, so no
    /// per-row rendering happens; single- and two-column tables (the
    /// overwhelmingly common shapes) avoid building row vectors entirely.
    pub fn distinct(self) -> Table {
        let mask: Vec<bool> = match self.cols.len() {
            0 => return self,
            1 => {
                let mut seen = HashSet::with_capacity(self.rows);
                self.cols[0].iter().map(|&k| seen.insert(k)).collect()
            }
            2 => {
                let mut seen = HashSet::with_capacity(self.rows);
                (0..self.rows)
                    .map(|r| seen.insert((self.cols[0][r], self.cols[1][r])))
                    .collect()
            }
            _ => {
                let mut seen = HashSet::with_capacity(self.rows);
                (0..self.rows).map(|r| seen.insert(self.row(r))).collect()
            }
        };
        self.filter_rows(&mask)
    }

    /// Keep the rows whose mask entry is `true`; returns `self` with its
    /// storage untouched (shared) when nothing is dropped.
    fn filter_rows(self, mask: &[bool]) -> Table {
        debug_assert_eq!(mask.len(), self.rows);
        let kept = mask.iter().filter(|&&m| m).count();
        if kept == self.rows {
            return self;
        }
        let cols = self
            .cols
            .iter()
            .map(|col| {
                Arc::new(
                    col.iter()
                        .zip(mask)
                        .filter(|(_, &m)| m)
                        .map(|(&k, _)| k)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        Table::with_schema(self.names, cols)
    }
}

/// Strategy of the fixpoint driver — mirrors the µ / µ∆ operator pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MuStrategy {
    /// The Naïve operator µ.
    #[default]
    Mu,
    /// The Delta operator µ∆.
    MuDelta,
}

impl MuStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MuStrategy::Mu => "mu",
            MuStrategy::MuDelta => "mu-delta",
        }
    }
}

/// How a batched multi-source fixpoint shares body evaluations across its
/// seeds (see [`Executor::run_fixpoint_batched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchSharing {
    /// Feed the body every `(seed, frontier-node)` pair per iteration.
    /// Each seed's rows stay disjoint inside the plan, so this is sound
    /// for *every* seed-local body — including non-distributive ones
    /// (per-seed differences, set operations between rec-dependent arms).
    #[default]
    PerSeed,
    /// Feed the body each **distinct** frontier node once (tagged with
    /// itself) and distribute its image to every seed whose frontier
    /// contained it.  Overlapping frontiers — the common case in the
    /// bidder-network / curriculum per-item workloads — pay each node's
    /// body scan once instead of once per seed.  Sound only for
    /// **distributive** bodies (`e(X) = ⋃ₓ∈X e({x})`, the property the
    /// ∪ push-up check certifies): a non-distributive body evaluated
    /// per-node is simply a different function.
    DistinctNodes,
}

impl BatchSharing {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BatchSharing::PerSeed => "per-seed",
            BatchSharing::DistinctNodes => "distinct-nodes",
        }
    }
}

/// Statistics of one fixpoint execution.
#[derive(Debug, Clone, Default, Eq)]
pub struct ExecStats {
    /// Iterations of the do-while loop.  For a batched run this is the
    /// *maximum* per-seed recursion depth — the shared loop runs until the
    /// deepest seed converges.
    pub iterations: usize,
    /// Total rows fed into the recursion body plan across all evaluations.
    pub rows_fed_back: u64,
    /// Number of body plan evaluations.  A batched run evaluates the body
    /// once per shared iteration (the whole point of batching: `max(depth)`
    /// evaluations instead of `sum(depth)` across seeds).
    pub body_evaluations: usize,
    /// Rows in the final result.
    pub result_rows: usize,
    /// Number of seeds evaluated together by
    /// [`Executor::run_fixpoint_batched`]; `0` for a plain per-seed run.
    pub batch_seeds: usize,
    /// Rows fed into each body evaluation, in evaluation order — the
    /// frontier-growth curve the cost model's feedback loop consumes.
    /// Deterministic for a given (plan, store, seeds) input, so it takes
    /// part in equality.
    pub frontier_curve: Vec<u64>,
    /// Wall time of the run in microseconds.  **Excluded from equality**:
    /// the parallel ≡ sequential property tests compare whole stats
    /// structs, and wall time legitimately differs between runs.
    pub wall_micros: u64,
}

impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        self.iterations == other.iterations
            && self.rows_fed_back == other.rows_fed_back
            && self.body_evaluations == other.body_evaluations
            && self.result_rows == other.result_rows
            && self.batch_seeds == other.batch_seeds
            && self.frontier_curve == other.frontier_curve
    }
}

/// Exclusive-or-shared access to the node store during plan evaluation.
///
/// The executor's public entry points take any [`StoreMut`]-convertible
/// handle (`&mut NodeStore` or a session's `&mut CowStore`) and wrap it in
/// the matching variant; the parallel batched driver instead hands each
/// worker executor a [`StoreRef::Shared`] view of the same store.  Every
/// operator reads through [`StoreRef::read`]; only `Construct` — the one
/// operator that mutates the store — goes through [`StoreRef::write`],
/// which fails on a shared view (and lazily clones a copy-on-write store).
/// The parallel path never reaches that error because it is gated on
/// [`Plan::contains_construct`] being `false`, but the check turns a
/// would-be data race into a reported error if the gate is ever bypassed.
enum StoreRef<'a> {
    /// Exclusive access — the sequential paths; construction allowed.
    Unique(&'a mut NodeStore),
    /// A session's copy-on-write store — construction clones it privately.
    Cow(&'a mut CowStore),
    /// Shared read-only access — one shard of a parallel batched run.
    Shared(&'a NodeStore),
}

impl StoreRef<'_> {
    fn read(&self) -> &NodeStore {
        match self {
            StoreRef::Unique(store) => store,
            StoreRef::Cow(cow) => cow.read(),
            StoreRef::Shared(store) => store,
        }
    }

    fn write(&mut self) -> Result<&mut NodeStore> {
        match self {
            StoreRef::Unique(store) => Ok(store),
            StoreRef::Cow(cow) => Ok(cow.write()),
            StoreRef::Shared(_) => Err(AlgebraError::Execution(
                "node construction requires exclusive store access \
                 (parallel fixpoint shards evaluate construction-free plans only)"
                    .into(),
            )),
        }
    }
}

impl<'a> From<StoreMut<'a>> for StoreRef<'a> {
    fn from(handle: StoreMut<'a>) -> Self {
        match handle {
            StoreMut::Exclusive(store) => StoreRef::Unique(store),
            StoreMut::Cow(cow) => StoreRef::Cow(cow),
        }
    }
}

/// Every piece of executor state that is scoped to *one plan* — the caches
/// and the per-node classification bitmaps.  Bundled so that re-entrant
/// evaluation (a nested `µ`/`µ∆` operator, whose sub-plan's node ids
/// overlap the outer plan's) can save and restore the whole lot with a
/// single `mem::take`, instead of a hand-maintained field list that
/// silently breaks when a cache-coupled field is added.
#[derive(Debug, Default)]
struct PlanState {
    /// Fingerprint of the plan this state was built for; evaluating a
    /// different plan invalidates everything here.
    key: Option<u64>,
    /// Cache of plan nodes that do not depend on the recursion input —
    /// their tables are reused across fixpoint iterations *and* across
    /// fixpoint runs.
    static_cache: HashMap<PlanNodeId, Table>,
    /// Per-*run* cache for rec-independent but **volatile** plan nodes —
    /// subtrees containing `Construct` (fresh node identity per run) or
    /// `IdLookup` (resolves against the per-run context document).  Reused
    /// across the iterations of one fixpoint run, cleared at the start of
    /// the next, never carried across runs or stores.
    volatile_cache: HashMap<PlanNodeId, Table>,
    /// `rec_dependent[id]` — does plan node `id` (transitively) consume a
    /// `RecInput`?  Computed once per plan, not once per body evaluation.
    rec_dependent: Vec<bool>,
    /// `volatile[id]` — does plan node `id`'s subtree contain a `Construct`
    /// or `IdLookup` operator?  Such nodes must not outlive a run.
    volatile: Vec<bool>,
}

/// The plan executor.
///
/// Holds no store borrow — every entry point takes `&mut NodeStore` — so an
/// executor is a *persistent* artifact: its [`Interner`] and its
/// rec-independent static cache survive across fixpoint runs and across
/// `PreparedQuery::execute` calls.  The static cache is keyed by the plan's
/// [fingerprint](Plan::fingerprint) and by the store's
/// [load epoch](NodeStore::load_epoch): evaluating a different plan or
/// loading a document invalidates it, nothing else does.
#[derive(Debug)]
pub struct Executor {
    /// Document used to resolve `IdLookup` when the looked-up strings do not
    /// come with an obvious anchor node; derived from the fixpoint seed
    /// unless set explicitly.
    context_doc: Option<DocId>,
    /// `true` when `context_doc` was set by [`Executor::set_context_doc`]
    /// (and must not be re-derived from later seeds).
    context_doc_explicit: bool,
    /// The string pool backing every `Key::Sym` this executor produced.
    interner: Interner,
    /// Identity of the store text pool `sym_xlat` translates from (`0` is
    /// never a real pool id, so it doubles as "no cache built yet").
    sym_xlat_pool: u64,
    /// Dense store-symbol → executor-symbol translation table, indexed by
    /// the store `StrId`'s raw value, `u32::MAX` marking an untranslated
    /// slot.  A hit turns `intern(store.resolve_text(sym))` — a hash over
    /// the payload bytes — into one array load: sound because a pool id
    /// names one linear growth history, so a store symbol's string can
    /// never change under an unchanged `sym_xlat_pool`.
    sym_xlat: Vec<u32>,
    /// Caches and bitmaps for the plan currently (or last) evaluated.
    plan_state: PlanState,
    /// The store load epoch the static cache was built at.
    store_epoch: u64,
    /// Times a static-cache lookup returned a shared handle.
    static_cache_hits: u64,
    /// Times a rec-independent plan node was actually evaluated.
    static_plan_evals: u64,
    /// Maximum fixpoint iterations before reporting divergence.
    pub max_iterations: usize,
    /// Per-query iteration *budget* (`ResourceLimits::max_iterations`),
    /// checked at the same barrier but reported as
    /// [`AlgebraError::BudgetExceeded`] instead of divergence.
    budget_iterations: Option<usize>,
    /// Cooperative deadline, checked at the same per-iteration barrier as
    /// `max_iterations`; `None` never times out.
    deadline: Option<Instant>,
    /// Shard count for batched fixpoint runs; `1` = sequential (default).
    threads: usize,
    /// Persistent worker executors for parallel batched runs, created
    /// lazily (one per shard).  Like their parent, workers keep their
    /// interner and static caches across runs, so repeated executions of a
    /// prepared query re-use worker-side static tables too.
    workers: Vec<Executor>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// Create a fresh executor.
    pub fn new() -> Self {
        Executor {
            context_doc: None,
            context_doc_explicit: false,
            interner: Interner::new(),
            sym_xlat_pool: 0,
            sym_xlat: Vec::new(),
            plan_state: PlanState::default(),
            store_epoch: 0,
            static_cache_hits: 0,
            static_plan_evals: 0,
            max_iterations: 100_000,
            budget_iterations: None,
            deadline: None,
            threads: 1,
            workers: Vec::new(),
        }
    }

    /// Install (or clear) the cooperative deadline.  Fixpoint drivers check
    /// it once per iteration — at the same barrier as the `max_iterations`
    /// guard — and abort with [`AlgebraError::DeadlineExceeded`] once the
    /// instant has passed, so a timed-out run stops between iterations,
    /// never mid-mutation.  The deadline persists across runs until reset.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Install (or clear) the per-query iteration budget.  Unlike
    /// `max_iterations` (whose breach means "the fixpoint diverged"),
    /// exceeding this caller-supplied cap is a resource verdict:
    /// [`AlgebraError::BudgetExceeded`] with `budget = "iterations"`.
    /// Persists across runs until reset, like the deadline.
    pub fn set_budget_iterations(&mut self, budget: Option<usize>) {
        self.budget_iterations = budget;
    }

    /// Map a store text-pool symbol to this executor's interner through
    /// the dense per-pool cache.  On a hit this skips both the payload
    /// render and the hash — equality of pool ids guarantees the cached
    /// executor symbol is exactly what `intern(resolve_text(sym))` would
    /// return.  A pool-id change (store swapped, or its pool diverged by
    /// growing while shared) drops only the translation table; executor
    /// symbols handed out earlier stay valid because the interner is
    /// untouched.
    fn translate_sym(&mut self, store: &NodeStore, sym: StrId) -> StrId {
        let pool = store.text_pool_id();
        if self.sym_xlat_pool != pool {
            self.sym_xlat.clear();
            self.sym_xlat_pool = pool;
        }
        let idx = sym.0 as usize;
        if idx >= self.sym_xlat.len() {
            self.sym_xlat.resize(idx + 1, u32::MAX);
        }
        if self.sym_xlat[idx] != u32::MAX {
            return StrId(self.sym_xlat[idx]);
        }
        let exec_sym = self.interner.intern(store.resolve_text(sym));
        self.sym_xlat[idx] = exec_sym.0;
        exec_sym
    }

    /// Per-iteration barrier guard: failpoint, deadline, iteration caps and
    /// the approximate memory budget (see [`Executor::set_deadline`],
    /// [`Executor::set_budget_iterations`], [`xqy_xdm::budget`]).
    ///
    /// On first memory-budget breach the executor *degrades* instead of
    /// failing: it releases its static/volatile table caches (recomputable
    /// at re-evaluation cost), credits the freed estimate back, and drops
    /// to sequential sharding; only a re-breach after relief is fatal.
    fn check_limits(&mut self, iterations: usize) -> Result<()> {
        xqy_xdm::fail::point("fixpoint.barrier")
            .map_err(|e| AlgebraError::Execution(e.to_string()))?;
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(AlgebraError::DeadlineExceeded { iterations });
            }
        }
        if let Some(max) = self.budget_iterations {
            if iterations >= max {
                return Err(AlgebraError::BudgetExceeded {
                    budget: "iterations".into(),
                    used: iterations as u64,
                    limit: max as u64,
                    iterations,
                });
            }
        }
        if iterations >= self.max_iterations {
            return Err(AlgebraError::NoFixpoint { iterations });
        }
        if let Some(budget) = xqy_xdm::budget::current() {
            if budget.over_limit().is_some() {
                if budget.try_relieve() {
                    budget.credit(self.release_static_memory());
                    self.threads = 1;
                }
                if let Some(used) = budget.over_limit() {
                    return Err(AlgebraError::BudgetExceeded {
                        budget: "memory".into(),
                        used,
                        limit: budget.limit(),
                        iterations,
                    });
                }
            }
        }
        Ok(())
    }

    /// Drop the executor's recomputable table caches (static and volatile,
    /// workers included), returning an estimate of the bytes freed — the
    /// relational side of budget relief.
    fn release_static_memory(&mut self) -> u64 {
        fn drain(state: &mut PlanState) -> u64 {
            let bytes = |t: &Table| (t.rows * t.cols.len() * std::mem::size_of::<Key>()) as u64;
            let freed = state.static_cache.values().map(bytes).sum::<u64>()
                + state.volatile_cache.values().map(bytes).sum::<u64>();
            state.static_cache.clear();
            state.volatile_cache.clear();
            freed
        }
        let mut freed = drain(&mut self.plan_state);
        for worker in &mut self.workers {
            freed += drain(&mut worker.plan_state);
        }
        freed
    }

    /// Set the shard count for [`Executor::run_fixpoint_batched`].  `1`
    /// (the default) takes the sequential code path; `t > 1` shards
    /// construction-free batched runs across `t` OS threads evaluating
    /// over a shared read-only view of the store.  Results are identical
    /// either way — sharding respects seed grouping and the per-iteration
    /// barrier.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured shard count for batched fixpoint runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Set the document used for `IdLookup` resolution (overrides the
    /// per-run derivation from the seed).
    pub fn set_context_doc(&mut self, doc: DocId) {
        self.context_doc = Some(doc);
        self.context_doc_explicit = true;
    }

    /// The executor's string pool (resolve `Key::Sym` cells through this).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the string pool (to build `Key::Sym` cells when
    /// constructing input tables by hand).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// How many static-cache lookups returned a shared handle, over the
    /// executor's lifetime.  The prepared-query layer diffs this around an
    /// `execute()` call to report per-occurrence reuse.
    pub fn static_cache_hits(&self) -> u64 {
        // Workers run shards of the same plan: their hits are this
        // executor's hits as far as the reuse metrics are concerned.
        self.static_cache_hits
            + self
                .workers
                .iter()
                .map(Executor::static_cache_hits)
                .sum::<u64>()
    }

    /// How many rec-independent plan nodes were actually evaluated, over
    /// the executor's lifetime.  A second `execute()` of a prepared query
    /// against an unchanged store performs zero of these.
    pub fn static_plan_evals(&self) -> u64 {
        self.static_plan_evals
            + self
                .workers
                .iter()
                .map(Executor::static_plan_evals)
                .sum::<u64>()
    }

    /// Drop the rec-independent caches (documents loaded into the store
    /// bump its [load epoch](NodeStore::load_epoch) and invalidate
    /// automatically; this is the explicit override).
    pub fn invalidate_static_cache(&mut self) {
        self.plan_state = PlanState::default();
        for worker in &mut self.workers {
            worker.invalidate_static_cache();
        }
    }

    /// Re-key the caches for `plan` against `store`'s current state.
    fn prime_for_plan(&mut self, store: &NodeStore, plan: &Plan) {
        if self.store_epoch != store.load_epoch() {
            self.plan_state.static_cache.clear();
            self.plan_state.volatile_cache.clear();
            // The interner restarts with the caches: every cached table
            // holding `Sym` cells is dropped on the same line, so no live
            // executor state references the old pool, and a long-lived
            // executor crossing many stores/documents doesn't accumulate
            // every string it ever saw.  (Fixpoint results are node-only
            // tables; only a caller holding a *direct* `eval_plan` result
            // across a document load would see its symbols invalidated —
            // see the `eval_plan` docs.)
            self.interner = Interner::new();
            // Cached executor symbols die with the interner they point
            // into; the translation table must go with them.
            self.sym_xlat.clear();
            self.sym_xlat_pool = 0;
            self.store_epoch = store.load_epoch();
        }
        let fingerprint = plan.fingerprint();
        if self.plan_state.key != Some(fingerprint) {
            self.plan_state.static_cache.clear();
            self.plan_state.volatile_cache.clear();
            self.plan_state.key = Some(fingerprint);
            let mut bits = vec![false; plan.len()];
            for id in plan.rec_inputs() {
                bits[id] = true;
            }
            for id in plan.dependents_of(&plan.rec_inputs()) {
                bits[id] = true;
            }
            self.plan_state.rec_dependent = bits;
            // Volatile taint: Construct creates a fresh identity per run,
            // IdLookup resolves against the per-run context document — both
            // propagate upward (construction order guarantees inputs come
            // before consumers).
            let mut volatile = vec![false; plan.len()];
            for (id, node) in plan.iter() {
                volatile[id] = matches!(node.op, Operator::Construct(_) | Operator::IdLookup)
                    || node.inputs.iter().any(|&i| volatile[i]);
            }
            self.plan_state.volatile = volatile;
        }
    }

    /// Evaluate `plan` with the recursion input bound to `rec` (pass an
    /// empty table when the plan has no `RecInput` leaf).
    ///
    /// A direct call is its own evaluation scope: volatile tables
    /// (constructed identities, `id()` resolutions) do not carry over from
    /// previous calls.  [`Executor::run_fixpoint`] instead scopes them to
    /// the whole run, so a body's constructed node is stable across the
    /// iterations of one fixpoint.
    ///
    /// `Key::Sym` cells in the returned table resolve against
    /// [`Executor::interner`] *as of now*: loading a document into the
    /// store afterwards resets the pool (alongside the caches keyed on the
    /// [load epoch](NodeStore::load_epoch)), invalidating symbols held from
    /// earlier results.  Decode string cells before mutating the store.
    pub fn eval_plan<'a>(
        &mut self,
        store: impl Into<StoreMut<'a>>,
        plan: &Plan,
        rec: &Table,
    ) -> Result<Table> {
        let mut store = StoreRef::from(store.into());
        self.plan_state.volatile_cache.clear();
        self.prime_for_plan(store.read(), plan);
        self.eval_plan_in_run(&mut store, plan, rec)
    }

    /// [`Executor::eval_plan`] without resetting the volatile scope or
    /// re-priming — the per-iteration entry point used inside a fixpoint
    /// run, where the plan and the store epoch cannot change between
    /// iterations (the run primes once up front).
    fn eval_plan_in_run(
        &mut self,
        store: &mut StoreRef<'_>,
        plan: &Plan,
        rec: &Table,
    ) -> Result<Table> {
        let root = plan
            .root()
            .ok_or_else(|| AlgebraError::InvalidPlan("plan has no root".into()))?;
        let mut memo: HashMap<PlanNodeId, Table> = HashMap::new();
        self.eval_node(store, plan, root, rec, &mut memo)
    }

    fn eval_node(
        &mut self,
        store: &mut StoreRef<'_>,
        plan: &Plan,
        id: PlanNodeId,
        rec: &Table,
        memo: &mut HashMap<PlanNodeId, Table>,
    ) -> Result<Table> {
        if let Some(cached) = memo.get(&id) {
            return Ok(cached.clone());
        }
        let is_rec_dependent = self.plan_state.rec_dependent[id];
        let is_volatile = self.plan_state.volatile[id];
        if !is_rec_dependent {
            // Volatile nodes (Construct / IdLookup subtrees) live in the
            // per-run cache and do not count towards the persistent-reuse
            // metrics; everything else in the persistent one.
            if is_volatile {
                if let Some(cached) = self.plan_state.volatile_cache.get(&id) {
                    return Ok(cached.clone());
                }
            } else if let Some(cached) = self.plan_state.static_cache.get(&id) {
                self.static_cache_hits += 1;
                return Ok(cached.clone());
            }
        }
        let node = plan.node(id).clone();
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            inputs.push(self.eval_node(store, plan, input, rec, memo)?);
        }
        let table = self.apply(store, plan, &node.op, &node.inputs, inputs, rec)?;
        if is_rec_dependent {
            memo.insert(id, table.clone());
        } else if is_volatile {
            self.plan_state.volatile_cache.insert(id, table.clone());
        } else {
            self.static_plan_evals += 1;
            self.plan_state.static_cache.insert(id, table.clone());
        }
        Ok(table)
    }

    fn apply(
        &mut self,
        store: &mut StoreRef<'_>,
        plan: &Plan,
        op: &Operator,
        input_ids: &[PlanNodeId],
        mut inputs: Vec<Table>,
        rec: &Table,
    ) -> Result<Table> {
        match op {
            Operator::RecInput => Ok(rec.clone()),
            Operator::Literal(values) => Ok(Table::from_columns(
                vec!["item".into()],
                vec![values
                    .iter()
                    .map(|v| Key::Sym(self.interner.intern(v)))
                    .collect()],
            )),
            Operator::DocRoot(uri) => {
                let store = store.read();
                let doc = store
                    .doc(uri)
                    .ok_or_else(|| AlgebraError::Execution(format!("document not found: {uri}")))?;
                let node = store.document_node(doc).ok_or_else(|| {
                    AlgebraError::Execution(format!("document has no root: {uri}"))
                })?;
                Ok(Table::from_nodes(&[node]))
            }
            Operator::Project(renames) => {
                let input = inputs.remove(0);
                let mut cols = Vec::with_capacity(renames.len());
                for (_, source) in renames {
                    // Zero-copy: projection re-arranges column handles.
                    cols.push(input.cols[input.column_index(source)?].clone());
                }
                Ok(Table {
                    names: Arc::new(renames.iter().map(|(out, _)| out.clone()).collect()),
                    cols,
                    rows: input.rows,
                })
            }
            Operator::Select { column, value } => {
                let input = inputs.remove(0);
                let idx = input.column_index(column)?;
                // The literal is compared *typed*: string cells against the
                // interned symbol, numeric/boolean cells against the parsed
                // literal, and node cells never match a string literal (the
                // tag-collision fix).
                let lit_sym = self.interner.intern(value);
                let lit_int: Option<i64> = value.trim().parse().ok();
                let lit_bool: Option<bool> = match value.as_str() {
                    "true" => Some(true),
                    "false" => Some(false),
                    _ => None,
                };
                let mask: Vec<bool> = input.cols[idx]
                    .iter()
                    .map(|&k| match k {
                        Key::Sym(s) => s == lit_sym,
                        Key::Int(i) => lit_int == Some(i),
                        Key::Bool(b) => lit_bool == Some(b),
                        Key::Node(_) => false,
                    })
                    .collect();
                Ok(input.filter_rows(&mask))
            }
            Operator::Join { left, right } => {
                let right_table = inputs.remove(1);
                let left_table = inputs.remove(0);
                let li = left_table.column_index(left)?;
                let ri = right_table.column_index(right)?;
                // Hash index over the right input, on typed keys.
                let mut index: HashMap<Key, Vec<usize>> = HashMap::new();
                for (row_idx, &key) in right_table.cols[ri].iter().enumerate() {
                    index.entry(key).or_default().push(row_idx);
                }
                // Matching (left row, right row) pairs.
                let mut lsrc = Vec::new();
                let mut rsrc = Vec::new();
                for (l, key) in left_table.cols[li].iter().enumerate() {
                    if let Some(matches) = index.get(key) {
                        for &r in matches {
                            lsrc.push(l);
                            rsrc.push(r);
                        }
                    }
                }
                // Output columns: left columns plus the right columns except
                // the join column, suffixing clashes.
                let mut names: Vec<String> = left_table.names.as_ref().clone();
                let mut cols: Vec<Arc<Vec<Key>>> = left_table
                    .cols
                    .iter()
                    .map(|col| Arc::new(gather(col, &lsrc)))
                    .collect();
                for (i, c) in right_table.names.iter().enumerate() {
                    if i == ri {
                        continue;
                    }
                    let name = if names.contains(c) {
                        format!("{c}_r")
                    } else {
                        c.clone()
                    };
                    names.push(name);
                    cols.push(Arc::new(gather(&right_table.cols[i], &rsrc)));
                }
                Ok(Table::with_schema(Arc::new(names), cols))
            }
            Operator::Cross => {
                let right = inputs.remove(1);
                let left = inputs.remove(0);
                let mut names: Vec<String> = left.names.as_ref().clone();
                for c in right.names.iter() {
                    let name = if names.contains(c) {
                        format!("{c}_r")
                    } else {
                        c.clone()
                    };
                    names.push(name);
                }
                let (lsrc, rsrc): (Vec<usize>, Vec<usize>) = (0..left.rows)
                    .flat_map(|l| (0..right.rows).map(move |r| (l, r)))
                    .unzip();
                let mut cols: Vec<Arc<Vec<Key>>> = left
                    .cols
                    .iter()
                    .map(|col| Arc::new(gather(col, &lsrc)))
                    .collect();
                cols.extend(right.cols.iter().map(|col| Arc::new(gather(col, &rsrc))));
                Ok(Table::with_schema(Arc::new(names), cols))
            }
            Operator::Distinct => Ok(inputs.remove(0).distinct()),
            Operator::Union => {
                let right = inputs.remove(1);
                let left = inputs.remove(0);
                if *left.names != *right.names {
                    return Err(AlgebraError::Execution(
                        "union over tables with different schemas".into(),
                    ));
                }
                let cols = left
                    .cols
                    .iter()
                    .zip(&right.cols)
                    .map(|(a, b)| {
                        let mut col = Vec::with_capacity(a.len() + b.len());
                        col.extend_from_slice(a);
                        col.extend_from_slice(b);
                        Arc::new(col)
                    })
                    .collect();
                Ok(Table::with_schema(left.names.clone(), cols).distinct())
            }
            Operator::Difference => {
                let right = inputs.remove(1);
                let left = inputs.remove(0);
                let mask: Vec<bool> = if left.cols.len() == 1 && right.cols.len() == 1 {
                    let keys: HashSet<Key> = right.cols[0].iter().copied().collect();
                    left.cols[0].iter().map(|k| !keys.contains(k)).collect()
                } else {
                    let keys: HashSet<Vec<Key>> = (0..right.rows).map(|r| right.row(r)).collect();
                    (0..left.rows)
                        .map(|r| !keys.contains(&left.row(r)))
                        .collect()
                };
                Ok(left.filter_rows(&mask))
            }
            Operator::Count { group_by } => {
                let input = inputs.remove(0);
                match group_by {
                    None => Ok(Table::from_columns(
                        vec!["count".into()],
                        vec![vec![Key::Int(input.rows as i64)]],
                    )),
                    Some(col) => {
                        let idx = input.column_index(col)?;
                        let mut order: Vec<Key> = Vec::new();
                        let mut groups: HashMap<Key, i64> = HashMap::new();
                        for &key in input.cols[idx].iter() {
                            *groups.entry(key).or_insert_with(|| {
                                order.push(key);
                                0
                            }) += 1;
                        }
                        let counts = order.iter().map(|k| Key::Int(groups[k])).collect();
                        Ok(Table::from_columns(
                            vec![col.clone(), "count".into()],
                            vec![order, counts],
                        ))
                    }
                }
            }
            Operator::Fun { kind, left, right } => {
                let input = inputs.remove(0);
                let li = input.column_index(left)?;
                let ri = input.column_index(right)?;
                let res: Vec<Key> = (0..input.rows)
                    .map(|r| apply_fun(*kind, input.cols[li][r], input.cols[ri][r], &self.interner))
                    .collect();
                let mut names: Vec<String> = input.names.as_ref().clone();
                names.push("res".into());
                let mut cols = input.cols;
                cols.push(Arc::new(res));
                Ok(Table::with_schema(Arc::new(names), cols))
            }
            Operator::RowTag | Operator::RowNum => {
                let input = inputs.remove(0);
                let mut names: Vec<String> = input.names.as_ref().clone();
                names.push(if matches!(op, Operator::RowTag) {
                    "tag".into()
                } else {
                    "rownum".into()
                });
                let numbers = (0..input.rows).map(|i| Key::Int(i as i64 + 1)).collect();
                let mut cols = input.cols;
                cols.push(Arc::new(numbers));
                Ok(Table::with_schema(Arc::new(names), cols))
            }
            Operator::Step { axis, test } => {
                let store = store.read();
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let mut src = Vec::new();
                let mut items = Vec::new();
                for (r, key) in input.cols[idx].iter().enumerate() {
                    let Some(node) = key.as_node() else {
                        continue;
                    };
                    for result in store.axis_nodes(node, *axis, test) {
                        src.push(r);
                        items.push(Key::Node(result));
                    }
                }
                Ok(replace_item_column(&input, idx, src, items).distinct())
            }
            Operator::AttrValue(name) => {
                let store = store.read();
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let mut src = Vec::new();
                let mut items = Vec::new();
                for (r, key) in input.cols[idx].iter().enumerate() {
                    let Some(node) = key.as_node() else {
                        continue;
                    };
                    if let Some(sym) = store.attribute_value_sym(node, name) {
                        src.push(r);
                        items.push(Key::Sym(self.translate_sym(store, sym)));
                    }
                }
                Ok(replace_item_column(&input, idx, src, items))
            }
            Operator::StringValue => {
                let store = store.read();
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                // Row count is preserved: only the item column is rewritten,
                // every other column handle is shared untouched.
                let items: Vec<Key> = input.cols[idx]
                    .iter()
                    .map(|&key| match key.as_node() {
                        Some(node) => match store.string_value_sym(node) {
                            // Leaf payload: store symbol → executor symbol
                            // through the per-pool cache, no render.
                            Some(sym) => Key::Sym(self.translate_sym(store, sym)),
                            // Element/document concatenation: borrow the
                            // store's memoized render instead of building
                            // a fresh String per row.
                            None => Key::Sym(self.interner.intern(&store.string_value_ref(node))),
                        },
                        None => key,
                    })
                    .collect();
                let mut cols = input.cols.clone();
                cols[idx] = Arc::new(items);
                Ok(Table::with_schema(input.names.clone(), cols))
            }
            Operator::IdLookup => {
                let store = store.read();
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                // The context document is demanded lazily — only when there
                // is actually an ID string to resolve — so an empty input
                // (e.g. a nested µ whose seed produced nothing) evaluates to
                // the empty table instead of erroring or, worse, resolving
                // against a stale document from a previous run.
                let mut doc: Option<DocId> = None;
                let mut src = Vec::new();
                let mut items = Vec::new();
                for (r, &key) in input.cols[idx].iter().enumerate() {
                    // Only string cells carry ID text; the old code rendered
                    // node cells as "node:…", which could never resolve.
                    let Key::Sym(s) = key else { continue };
                    let d = match doc {
                        Some(d) => d,
                        None => {
                            let d = self.context_doc.ok_or_else(|| {
                                AlgebraError::Execution(
                                    "IdLookup requires a context document \
                                     (Executor::set_context_doc)"
                                        .into(),
                                )
                            })?;
                            doc = Some(d);
                            d
                        }
                    };
                    let text = self.interner.resolve(s);
                    for token in text.split_whitespace() {
                        if let Some(node) = store.lookup_id(d, token) {
                            src.push(r);
                            items.push(Key::Node(node));
                        }
                    }
                }
                Ok(replace_item_column(&input, idx, src, items).distinct())
            }
            Operator::IfThenElse => {
                let else_table = inputs.remove(2);
                let then_table = inputs.remove(1);
                let cond = inputs.remove(0);
                let truthy = effective_boolean(&cond);
                Ok(if truthy { then_table } else { else_table })
            }
            Operator::Construct(name) => {
                let input = inputs.remove(0);
                let store = store.write()?;
                let frag = store.new_fragment();
                let element = store.create_element(frag, xqy_xdm::QName::local(name.clone()));
                let _ = input;
                Ok(Table::from_nodes(&[element]))
            }
            Operator::Mu | Operator::MuDelta => {
                // input 0: seed plan result; input 1 is the body sub-plan,
                // which must be re-evaluated per iteration — so it cannot be
                // passed as a pre-computed table.  We re-drive it here,
                // saving the outer plan's cache state around the nested run
                // (plan node ids overlap between plans, so the inner run
                // must not leave its entries behind).
                let seed = inputs.remove(0);
                let body_root = input_ids[1];
                let body_plan = subplan(plan, body_root);
                let strategy = if matches!(op, Operator::Mu) {
                    MuStrategy::Mu
                } else {
                    MuStrategy::MuDelta
                };
                // The whole plan-scoped state swaps out in one move; the
                // nested run rebuilds its own and the outer plan's comes
                // back untouched.  The context document is saved alongside:
                // the nested run derives its own from its seed.
                let saved_state = std::mem::take(&mut self.plan_state);
                let saved_doc = self.context_doc;
                let result =
                    self.run_fixpoint_ref(store, &body_plan, &seed.item_nodes(), strategy, false);
                self.plan_state = saved_state;
                self.context_doc = saved_doc;
                let (table, _stats) = result?;
                Ok(table)
            }
        }
    }

    /// Drive a fixpoint over `body` seeded with `seed` using `strategy`.
    ///
    /// With `seed_in_result = false` the accumulation starts from the body
    /// applied to the seed (Definition 2.1); with `true` it starts from the
    /// seed itself (the paper's Example 2.4 reading).
    pub fn run_fixpoint<'a>(
        &mut self,
        store: impl Into<StoreMut<'a>>,
        body: &Plan,
        seed: &[NodeId],
        strategy: MuStrategy,
        seed_in_result: bool,
    ) -> Result<(Table, ExecStats)> {
        self.run_fixpoint_ref(
            &mut StoreRef::from(store.into()),
            body,
            seed,
            strategy,
            seed_in_result,
        )
    }

    /// [`Executor::run_fixpoint`] over a [`StoreRef`] — the form a nested
    /// `µ`/`µ∆` operator re-enters with, so nested fixpoints inside a
    /// parallel shard run against the shared store view (they are
    /// construction-free by the parallel gate, so read access suffices).
    fn run_fixpoint_ref(
        &mut self,
        store: &mut StoreRef<'_>,
        body: &Plan,
        seed: &[NodeId],
        strategy: MuStrategy,
        seed_in_result: bool,
    ) -> Result<(Table, ExecStats)> {
        if !self.context_doc_explicit {
            // Resolve id() lookups against the seed's document by default,
            // re-derived per run so a persistent executor follows its seeds
            // — and reset to None on an empty seed, so a run never resolves
            // IDs against a stale document from a previous run (or store).
            // IdLookup demands the document lazily, so empty-seeded runs
            // over id()-bodies still evaluate to empty rather than erroring.
            self.context_doc = seed.first().map(|n| DocId(n.doc));
        }
        // Volatile tables (constructed identities, id() resolutions) are
        // scoped to one run; priming happens once here — neither the body
        // plan nor the store epoch can change between iterations.
        self.plan_state.volatile_cache.clear();
        self.prime_for_plan(store.read(), body);
        let started = Instant::now();
        let mut stats = ExecStats::default();
        // The accumulator lives as a NodeSet bitset for the whole run:
        // union/except are word-parallel and the termination tests are
        // emptiness checks, so no HashSet is built and no re-sort happens
        // per iteration.  Document-ordered vectors are materialized only to
        // feed the body plan (and once at the end, for the result table).
        let mut res: NodeSet = if seed_in_result {
            NodeSet::from_nodes(seed.iter().copied())
        } else {
            NodeSet::from_nodes(self.eval_body(store, body, seed, &mut stats)?)
        };
        // Mu feeds the whole accumulator back each round and needs it in
        // document order; MuDelta instead tracks ∆ (starting as a copy of
        // the initial accumulation) and only materializes that.  Each
        // strategy pays only for the state it reads.
        let (mut res_vec, mut delta) = match strategy {
            MuStrategy::Mu => (res.to_vec(store.read()), NodeSet::new()),
            MuStrategy::MuDelta => (Vec::new(), res.clone()),
        };
        loop {
            self.check_limits(stats.iterations)?;
            stats.iterations += 1;
            match strategy {
                MuStrategy::Mu => {
                    let step = self.eval_body(store, body, &res_vec, &mut stats)?;
                    let mut fresh = NodeSet::from_nodes(step);
                    fresh.except_in_place(&res);
                    if fresh.is_empty() {
                        break;
                    }
                    res.union_in_place(&fresh);
                    res_vec = res.to_vec(store.read());
                }
                MuStrategy::MuDelta => {
                    let delta_vec = delta.to_vec(store.read());
                    let step = self.eval_body(store, body, &delta_vec, &mut stats)?;
                    delta = NodeSet::from_nodes(step);
                    delta.except_in_place(&res);
                    if delta.is_empty() {
                        res_vec = res.to_vec(store.read());
                        break;
                    }
                    res.union_in_place(&delta);
                }
            }
        }
        stats.result_rows = res.len();
        stats.wall_micros = started.elapsed().as_micros() as u64;
        Ok((Table::from_nodes(&res_vec), stats))
    }

    /// Drive one **batched multi-source fixpoint**: evaluate the recursion
    /// body once per iteration over a two-column `(`[`SEED_COLUMN`]`, item)`
    /// relation holding the frontiers of *all* seeds, instead of running one
    /// fixpoint per seed.  Every body scan, join and duplicate elimination
    /// is shared across the batch; Naïve/Delta semantics are applied
    /// **per seed** by regrouping each iteration's output on the seed
    /// column and taking the group-wise difference against that seed's
    /// accumulator.
    ///
    /// `body` must be the [seed-carried form](Plan::seed_carried) of the
    /// recursion body — the per-seed plan rewritten so every rec-dependent
    /// operator propagates the seed column (plans that cannot be rewritten
    /// are not batchable and should run per seed).  `seeds` must be
    /// distinct; the caller deduplicates (a duplicated seed would fold two
    /// identical fixpoints into one group).  `sharing` picks the frontier
    /// representation: [`BatchSharing::DistinctNodes`] additionally shares
    /// body scans between seeds whose frontiers overlap, and is only sound
    /// for distributive bodies — pass [`BatchSharing::PerSeed`] otherwise.
    ///
    /// The result table has columns `[`[`SEED_COLUMN`]`, item]`, grouped by
    /// seed in input order with each group in document order — exactly the
    /// concatenation of the per-seed [`Executor::run_fixpoint`] results.
    /// [`ExecStats::iterations`] is the *maximum* per-seed depth and
    /// [`ExecStats::body_evaluations`] counts the shared iterations.
    pub fn run_fixpoint_batched<'a>(
        &mut self,
        store: impl Into<StoreMut<'a>>,
        body: &Plan,
        seeds: &[NodeId],
        strategy: MuStrategy,
        seed_in_result: bool,
        sharing: BatchSharing,
    ) -> Result<(Table, ExecStats)> {
        let mut store_ref = StoreRef::from(store.into());
        let store = &mut store_ref;
        let started = Instant::now();
        let mut stats = ExecStats {
            batch_seeds: seeds.len(),
            ..ExecStats::default()
        };
        let schema = vec![SEED_COLUMN.to_string(), "item".to_string()];
        if seeds.is_empty() {
            return Ok((Table::new(schema), stats));
        }
        debug_assert!(
            {
                let mut uniq: Vec<NodeId> = seeds.to_vec();
                uniq.sort();
                uniq.dedup();
                uniq.len() == seeds.len()
            },
            "batched seeds must be distinct"
        );
        if !self.context_doc_explicit {
            // Same derivation as `run_fixpoint`: id() resolves against the
            // seed's document.  The batched dispatcher only batches
            // same-document seed sets over id()-using plans, so "the first
            // seed's document" is *the* document of the batch.
            self.context_doc = seeds.first().map(|n| DocId(n.doc));
        }
        self.plan_state.volatile_cache.clear();
        self.prime_for_plan(store.read(), body);

        // Shard count for this run: >1 only when parallelism is requested,
        // there is more than one seed to spread, and the body is
        // construction-free (construction mutates the store and pins the
        // run to the exclusive sequential path).  `shards == 1` takes the
        // sequential code verbatim — `shard::for_each_shard` and
        // `shard::map_sharded` run inline on the caller thread.
        let shards = if self.threads > 1 && seeds.len() > 1 && !body.contains_construct() {
            self.threads.min(seeds.len())
        } else {
            1
        };
        if shards > 1 {
            while self.workers.len() < shards {
                self.workers.push(Executor::new());
            }
            for worker in &mut self.workers[..shards] {
                // Workers mirror the parent's per-run state: same context
                // document (and derivation mode, so nested fixpoints
                // re-derive exactly as the sequential run would), fresh
                // volatile scope, caches primed for this plan and store.
                worker.max_iterations = self.max_iterations;
                worker.budget_iterations = self.budget_iterations;
                worker.deadline = self.deadline;
                worker.context_doc = self.context_doc;
                worker.context_doc_explicit = self.context_doc_explicit;
                worker.plan_state.volatile_cache.clear();
                worker.prime_for_plan(store.read(), body);
            }
        }

        let n = seeds.len();

        // Per-seed accumulators, index-aligned with `seeds`.  The shared
        // loop below is Figure 3 run once for the whole batch: the frontier
        // fed to the body is the union of the per-seed frontiers, and the
        // grow/terminate decision is group-wise.
        let mut res: Vec<NodeSet> = if seed_in_result {
            seeds.iter().map(|&s| NodeSet::from_nodes([s])).collect()
        } else {
            let singletons: Vec<Vec<NodeId>> = seeds.iter().map(|&s| vec![s]).collect();
            let groups =
                self.step_batched(store, body, seeds, &singletons, sharing, shards, &mut stats)?;
            groups.into_iter().map(NodeSet::from_nodes).collect()
        };
        // Mu re-feeds each seed's whole accumulator until that seed stops
        // growing; MuDelta tracks a per-seed ∆.  `active[i]` / a non-empty
        // `delta[i]` mark the seeds still iterating — converged seeds
        // contribute no rows to later frontiers.
        let mut active = vec![true; n];
        let mut delta: Vec<NodeSet> = match strategy {
            MuStrategy::Mu => Vec::new(),
            MuStrategy::MuDelta => res.clone(),
        };
        loop {
            self.check_limits(stats.iterations)?;
            stats.iterations += 1;
            let grew;
            match strategy {
                MuStrategy::Mu => {
                    // Frontier materialization and the per-seed merge both
                    // shard by seed range; the `step_batched` call between
                    // them is the iteration barrier — every shard's image
                    // is in before any seed's accumulator moves.
                    let frontier: Vec<Vec<NodeId>> = {
                        let shared = store.read();
                        let pairs: Vec<(&NodeSet, bool)> =
                            res.iter().zip(active.iter().copied()).collect();
                        shard::map_sharded(shards, &pairs, |&(set, is_active)| {
                            if is_active {
                                set.to_vec(shared)
                            } else {
                                Vec::new()
                            }
                        })
                    };
                    let groups = self
                        .step_batched(store, body, seeds, &frontier, sharing, shards, &mut stats)?;
                    let mut merge: Vec<(Vec<NodeId>, &mut NodeSet, &mut bool)> = groups
                        .into_iter()
                        .zip(res.iter_mut())
                        .zip(active.iter_mut())
                        .map(|((group, set), is_active)| (group, set, is_active))
                        .collect();
                    let shard_grew = shard::for_each_shard(shards, &mut merge, |_, items| {
                        let mut grew = false;
                        for (group, set, is_active) in items.iter_mut() {
                            if !**is_active {
                                continue;
                            }
                            let mut fresh = NodeSet::from_nodes(std::mem::take(group));
                            fresh.except_in_place(set);
                            if fresh.is_empty() {
                                **is_active = false;
                            } else {
                                set.union_in_place(&fresh);
                                grew = true;
                            }
                        }
                        grew
                    });
                    grew = shard_grew.into_iter().any(|g| g);
                }
                MuStrategy::MuDelta => {
                    let frontier: Vec<Vec<NodeId>> = {
                        let shared = store.read();
                        shard::map_sharded(shards, &delta, |d| d.to_vec(shared))
                    };
                    let groups = self
                        .step_batched(store, body, seeds, &frontier, sharing, shards, &mut stats)?;
                    let mut merge: Vec<(Vec<NodeId>, &mut NodeSet, &mut NodeSet)> = groups
                        .into_iter()
                        .zip(res.iter_mut())
                        .zip(delta.iter_mut())
                        .map(|((group, set), d)| (group, set, d))
                        .collect();
                    let shard_grew = shard::for_each_shard(shards, &mut merge, |_, items| {
                        let mut grew = false;
                        for (group, set, d) in items.iter_mut() {
                            if d.is_empty() {
                                continue;
                            }
                            let mut next = NodeSet::from_nodes(std::mem::take(group));
                            next.except_in_place(set);
                            if !next.is_empty() {
                                set.union_in_place(&next);
                                grew = true;
                            }
                            **d = next;
                        }
                        grew
                    });
                    grew = shard_grew.into_iter().any(|g| g);
                }
            }
            if !grew {
                break;
            }
        }

        let per_seed: Vec<Vec<NodeId>> = {
            let shared = store.read();
            shard::map_sharded(shards, &res, |set| set.to_vec(shared))
        };
        let mut seed_col = Vec::new();
        let mut item_col = Vec::new();
        for (i, nodes) in per_seed.iter().enumerate() {
            for &node in nodes {
                seed_col.push(Key::Node(seeds[i]));
                item_col.push(Key::Node(node));
            }
        }
        stats.result_rows = item_col.len();
        stats.wall_micros = started.elapsed().as_micros() as u64;
        Ok((Table::from_columns(schema, vec![seed_col, item_col]), stats))
    }

    /// One shared iteration of the batched loop: apply the body to the
    /// per-seed `frontier` lists and return the per-seed step results.
    ///
    /// Under [`BatchSharing::PerSeed`] the body is evaluated once over all
    /// `(seed, node)` pairs.  Under [`BatchSharing::DistinctNodes`] it is
    /// evaluated once over the *distinct* frontier nodes — each node tagged
    /// with itself — and every node's image is distributed to the seeds
    /// whose frontier contained it, so overlapping frontiers pay each node
    /// exactly once.
    #[allow(clippy::too_many_arguments)] // internal driver step: one call site per mode
    fn step_batched(
        &mut self,
        store: &mut StoreRef<'_>,
        body: &Plan,
        seeds: &[NodeId],
        frontier: &[Vec<NodeId>],
        sharing: BatchSharing,
        shards: usize,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<NodeId>>> {
        match sharing {
            BatchSharing::PerSeed => {
                let tagged: Vec<(NodeId, &[NodeId])> = seeds
                    .iter()
                    .zip(frontier)
                    .map(|(&s, nodes)| (s, nodes.as_slice()))
                    .collect();
                self.eval_tagged_batch(store, body, &tagged, shards, stats)
            }
            BatchSharing::DistinctNodes => {
                // Which seeds contain each distinct frontier node, and the
                // distinct nodes in deterministic first-appearance order.
                let mut owners: HashMap<NodeId, Vec<u32>> = HashMap::new();
                let mut distinct: Vec<NodeId> = Vec::new();
                for (i, nodes) in frontier.iter().enumerate() {
                    for &node in nodes {
                        let slot = owners.entry(node).or_insert_with(|| {
                            distinct.push(node);
                            Vec::new()
                        });
                        slot.push(i as u32);
                    }
                }
                let singletons: Vec<[NodeId; 1]> = distinct.iter().map(|&d| [d]).collect();
                let tagged: Vec<(NodeId, &[NodeId])> = distinct
                    .iter()
                    .zip(&singletons)
                    .map(|(&d, s)| (d, s.as_slice()))
                    .collect();
                let images = self.eval_tagged_batch(store, body, &tagged, shards, stats)?;
                // Distribute each node's image to the seeds that fed it.
                let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
                for (node, image) in distinct.iter().zip(images) {
                    let seeds_of_node = &owners[node];
                    for &i in seeds_of_node {
                        groups[i as usize].extend_from_slice(&image);
                    }
                }
                Ok(groups)
            }
        }
    }

    /// Evaluate the (seed-carried) body once over `tagged` — a list of
    /// `(tag, nodes)` groups, each row entering as `(tag, node)` — and
    /// regroup the output rows by tag.  One body evaluation serves the
    /// entire batch; the tags are opaque to the plan (seeds in
    /// [`BatchSharing::PerSeed`] mode, origin nodes in
    /// [`BatchSharing::DistinctNodes`] mode).
    fn eval_tagged_batch(
        &mut self,
        store: &mut StoreRef<'_>,
        body: &Plan,
        tagged: &[(NodeId, &[NodeId])],
        shards: usize,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<NodeId>>> {
        let total_rows: usize = tagged.iter().map(|(_, nodes)| nodes.len()).sum();
        stats.rows_fed_back += total_rows as u64;
        stats.frontier_curve.push(total_rows as u64);
        // One *logical* body evaluation per iteration regardless of shard
        // count, so batched statistics stay comparable across thread
        // settings (the whole point of the stat is counting shared
        // iterations, not OS-level plan walks).
        stats.body_evaluations += 1;
        let shards = shards.min(tagged.len()).max(1);
        if shards <= 1 {
            return self.eval_tagged_chunk(store, body, tagged);
        }
        // Shard the tagged groups across the persistent worker executors,
        // each evaluating the body over a shared read-only store view.
        // Sound because the body is seed-carried — each group's rows stay
        // disjoint inside the plan, so a chunk's output equals those
        // groups evaluated alone — and construction-free (the parallel
        // gate).  Workers intern strings independently, which is harmless:
        // only node cells are regrouped into the fixpoint.
        let shared: &NodeStore = store.read();
        let chunk = tagged.len().div_ceil(shards);
        type WorkItem<'w, 'g> = (&'w mut Executor, &'g [(NodeId, &'g [NodeId])]);
        let mut work: Vec<WorkItem<'_, '_>> = self.workers[..shards]
            .iter_mut()
            .zip(tagged.chunks(chunk))
            .collect();
        let results = shard::for_each_shard(work.len(), &mut work, |_, items| {
            // `for_each_shard` with threads == len hands each closure
            // exactly one (worker, chunk) pair.
            let (worker, part) = &mut items[0];
            worker.eval_tagged_chunk(&mut StoreRef::Shared(shared), body, part)
        });
        let mut groups = Vec::with_capacity(tagged.len());
        for result in results {
            groups.extend(result?);
        }
        Ok(groups)
    }

    /// The sequential core of [`Executor::eval_tagged_batch`]: evaluate the
    /// seed-carried body once over `tagged` and regroup the output rows by
    /// tag — either the whole batch, or one shard's chunk of it.
    fn eval_tagged_chunk(
        &mut self,
        store: &mut StoreRef<'_>,
        body: &Plan,
        tagged: &[(NodeId, &[NodeId])],
    ) -> Result<Vec<Vec<NodeId>>> {
        let mut tag_col = Vec::new();
        let mut item_col = Vec::new();
        for (tag, nodes) in tagged {
            for &node in *nodes {
                tag_col.push(Key::Node(*tag));
                item_col.push(Key::Node(node));
            }
        }
        let rec = Table::from_columns(
            vec![SEED_COLUMN.to_string(), "item".to_string()],
            vec![tag_col, item_col],
        );
        let out = self.eval_plan_in_run(store, body, &rec)?;
        let si = out.column_index(SEED_COLUMN)?;
        let ii = out.column_index("item")?;
        let index: HashMap<NodeId, usize> = tagged
            .iter()
            .enumerate()
            .map(|(i, &(tag, _))| (tag, i))
            .collect();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); tagged.len()];
        for r in 0..out.len() {
            let (Some(tag), Some(item)) = (out.key(r, si).as_node(), out.key(r, ii).as_node())
            else {
                // Mirrors `Table::item_nodes`: non-node rows do not feed
                // back into a node-set fixpoint.
                continue;
            };
            if let Some(&i) = index.get(&tag) {
                groups[i].push(item);
            }
        }
        Ok(groups)
    }

    fn eval_body(
        &mut self,
        store: &mut StoreRef<'_>,
        body: &Plan,
        input: &[NodeId],
        stats: &mut ExecStats,
    ) -> Result<Vec<NodeId>> {
        stats.rows_fed_back += input.len() as u64;
        stats.frontier_curve.push(input.len() as u64);
        stats.body_evaluations += 1;
        xqy_xdm::fail::point("alloc.table").map_err(|e| AlgebraError::Execution(e.to_string()))?;
        let rec = Table::from_nodes(input);
        let out = self.eval_plan_in_run(store, body, &rec)?;
        Ok(out.item_nodes())
    }
}

/// Gather `col[i]` for every `i` in `idx` (the columnar row-selection
/// primitive joins, crosses and steps are built from).
fn gather(col: &[Key], idx: &[usize]) -> Vec<Key> {
    idx.iter().map(|&i| col[i]).collect()
}

/// Rebuild `input` with the `item` column replaced by `items` and every
/// other column gathered through `src` (one source row per output row).
fn replace_item_column(input: &Table, item_idx: usize, src: Vec<usize>, items: Vec<Key>) -> Table {
    debug_assert_eq!(src.len(), items.len());
    let mut cols: Vec<Arc<Vec<Key>>> = Vec::with_capacity(input.cols.len());
    for (c, col) in input.cols.iter().enumerate() {
        if c == item_idx {
            cols.push(Arc::new(Vec::new())); // replaced just below
        } else {
            cols.push(Arc::new(gather(col, &src)));
        }
    }
    cols[item_idx] = Arc::new(items);
    Table::with_schema(input.names.clone(), cols)
}

fn apply_fun(kind: FunKind, left: Key, right: Key, interner: &Interner) -> Key {
    match kind {
        // Equality is typed (`Sym` never equals `Node`/`Bool`), with a
        // numeric bridge between symbols and integers so that a count
        // compared against a literal (compiled as a string symbol) works.
        FunKind::Eq => Key::Bool(keys_equal(left, right, interner)),
        FunKind::Ne => Key::Bool(!keys_equal(left, right, interner)),
        FunKind::Lt | FunKind::Gt => {
            let (l, r) = (numeric(left, interner), numeric(right, interner));
            Key::Bool(if matches!(kind, FunKind::Lt) {
                l < r
            } else {
                l > r
            })
        }
        FunKind::Add | FunKind::Sub => {
            let (l, r) = (numeric(left, interner), numeric(right, interner));
            Key::Int(if matches!(kind, FunKind::Add) {
                l + r
            } else {
                l - r
            })
        }
    }
}

fn keys_equal(left: Key, right: Key, interner: &Interner) -> bool {
    match (left, right) {
        // The bridge fires only when the symbol *is* an integer rendering;
        // a non-numeric string never equals any integer (in particular not
        // 0, which a parse fallback would silently produce).
        (Key::Sym(s), Key::Int(i)) | (Key::Int(i), Key::Sym(s)) => {
            interner.resolve(s).trim().parse::<i64>() == Ok(i)
        }
        _ => left == right,
    }
}

fn numeric(key: Key, interner: &Interner) -> i64 {
    match key {
        Key::Int(i) => i,
        Key::Bool(b) => b as i64,
        Key::Sym(s) => interner.resolve(s).trim().parse().unwrap_or(0),
        Key::Node(_) => 0,
    }
}

/// Effective boolean value of a condition table: a single `count`/integer
/// cell is tested against zero; otherwise any row counts as true.
fn effective_boolean(table: &Table) -> bool {
    if table.columns().len() == 1 && table.len() == 1 {
        match table.key(0, 0) {
            Key::Int(i) => return i != 0,
            Key::Bool(b) => return b,
            _ => {}
        }
    }
    !table.is_empty()
}

/// Extract the sub-plan rooted at `root` as its own [`Plan`] (used to
/// re-drive the body input of a µ / µ∆ operator).
fn subplan(plan: &Plan, root: PlanNodeId) -> Plan {
    let mut mapping: HashMap<PlanNodeId, PlanNodeId> = HashMap::new();
    let mut out = Plan::new();
    let new_root = copy_into(plan, root, &mut out, &mut mapping);
    out.set_root(new_root);
    out
}

fn copy_into(
    plan: &Plan,
    id: PlanNodeId,
    out: &mut Plan,
    mapping: &mut HashMap<PlanNodeId, PlanNodeId>,
) -> PlanNodeId {
    if let Some(&mapped) = mapping.get(&id) {
        return mapped;
    }
    let node = plan.node(id).clone();
    let inputs = node
        .inputs
        .iter()
        .map(|&i| copy_into(plan, i, out, mapping))
        .collect();
    let new_id = out.add(node.op, inputs);
    mapping.insert(id, new_id);
    new_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::{Axis, NodeTest};

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
    </curriculum>"#;

    fn store_with_curriculum() -> (NodeStore, DocId) {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document_with_uri("curriculum.xml", CURRICULUM)
            .unwrap();
        store.register_id_attribute(doc, "code");
        (store, doc)
    }

    /// The Q1 recursion body as a hand-built plan.
    fn q1_plan() -> Plan {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        plan.set_root(lookup);
        plan
    }

    fn seed_course(store: &mut NodeStore, doc: DocId, code: &str) -> Vec<NodeId> {
        let root = store.document_element(doc).unwrap();
        store
            .axis_nodes(root, Axis::Child, &NodeTest::Name("course".into()))
            .into_iter()
            .filter(|&c| store.attribute_value(c, "code") == Some(code))
            .collect()
    }

    #[test]
    fn step_and_select_operators() {
        let (mut store, doc) = store_with_curriculum();
        let root_elem = store.document_element(doc).unwrap();
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let courses = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("course".into()),
            },
            vec![rec],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![courses],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c2".into(),
            },
            vec![attr],
        );
        let back = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        plan.set_root(back);

        let mut exec = Executor::new();
        let result = exec
            .eval_plan(&mut store, &plan, &Table::from_nodes(&[root_elem]))
            .unwrap();
        assert_eq!(result.len(), 1);
        let node = result.item_nodes()[0];
        assert_eq!(store.attribute_value(node, "code"), Some("c2"));
    }

    #[test]
    fn mu_computes_transitive_closure() {
        let (mut store, doc) = store_with_curriculum();
        let seed = seed_course(&mut store, doc, "c1");
        let plan = q1_plan();
        let mut exec = Executor::new();
        let (result, stats) = exec
            .run_fixpoint(&mut store, &plan, &seed, MuStrategy::Mu, false)
            .unwrap();
        let mut codes: Vec<String> = result
            .item_nodes()
            .iter()
            .map(|&n| store.attribute_value(n, "code").unwrap().to_string())
            .collect();
        codes.sort();
        assert_eq!(codes, vec!["c2", "c3", "c4"]);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn mu_delta_matches_mu_and_feeds_fewer_rows() {
        let (mut store, doc) = store_with_curriculum();
        let seed = seed_course(&mut store, doc, "c1");
        let plan = q1_plan();

        let (naive_result, naive_stats) = {
            let mut exec = Executor::new();
            exec.run_fixpoint(&mut store, &plan, &seed, MuStrategy::Mu, false)
                .unwrap()
        };
        let (delta_result, delta_stats) = {
            let mut exec = Executor::new();
            exec.run_fixpoint(&mut store, &plan, &seed, MuStrategy::MuDelta, false)
                .unwrap()
        };
        let mut a = naive_result.item_nodes();
        let mut b = delta_result.item_nodes();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(delta_stats.rows_fed_back < naive_stats.rows_fed_back);
    }

    #[test]
    fn mu_operator_embedded_in_a_plan() {
        let (mut store, doc) = store_with_curriculum();
        let _ = doc;
        let mut plan = Plan::new();
        // Seed: doc root -> child::course -> select code = c1 (via carry).
        let docroot = plan.add(Operator::DocRoot("curriculum.xml".into()), vec![]);
        let curriculum = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("curriculum".into()),
            },
            vec![docroot],
        );
        let courses = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("course".into()),
            },
            vec![curriculum],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![courses],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c1".into(),
            },
            vec![attr],
        );
        let seed = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        // Body: the Q1 recursion body.
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        let mu = plan.add(Operator::Mu, vec![seed, lookup]);
        plan.set_root(mu);

        let doc_id = store.doc("curriculum.xml").unwrap();
        let mut exec = Executor::new();
        exec.set_context_doc(doc_id);
        let result = exec
            .eval_plan(&mut store, &plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn join_and_count_operators() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let left = plan.add(
            Operator::Literal(vec!["a".into(), "b".into(), "c".into()]),
            vec![],
        );
        let right = plan.add(
            Operator::Literal(vec!["b".into(), "c".into(), "d".into()]),
            vec![],
        );
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![left, right],
        );
        let count = plan.add(Operator::Count { group_by: None }, vec![join]);
        plan.set_root(count);
        let mut exec = Executor::new();
        let result = exec
            .eval_plan(&mut store, &plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.key(0, 0), Key::Int(2));
    }

    #[test]
    fn union_difference_and_distinct() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let a = plan.add(
            Operator::Literal(vec!["x".into(), "y".into(), "y".into()]),
            vec![],
        );
        let b = plan.add(Operator::Literal(vec!["y".into(), "z".into()]), vec![]);
        let union = plan.add(Operator::Union, vec![a, b]);
        plan.set_root(union);
        let mut exec = Executor::new();
        let result = exec
            .eval_plan(&mut store, &plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 3); // x, y, z — set semantics

        let mut plan2 = Plan::new();
        let a = plan2.add(Operator::Literal(vec!["x".into(), "y".into()]), vec![]);
        let b = plan2.add(Operator::Literal(vec!["y".into()]), vec![]);
        let diff = plan2.add(Operator::Difference, vec![a, b]);
        plan2.set_root(diff);
        let result = exec
            .eval_plan(&mut store, &plan2, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.value(0, 0, exec.interner()), Value::Str("x".into()));
    }

    #[test]
    fn if_then_else_executes_on_count_condition() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let input = plan.add(Operator::Literal(vec!["a".into()]), vec![]);
        let cond = plan.add(Operator::Count { group_by: None }, vec![input]);
        let then_branch = plan.add(Operator::Literal(vec!["then".into()]), vec![]);
        let else_branch = plan.add(Operator::Literal(vec!["else".into()]), vec![]);
        let ite = plan.add(Operator::IfThenElse, vec![cond, then_branch, else_branch]);
        plan.set_root(ite);
        let mut exec = Executor::new();
        let result = exec
            .eval_plan(&mut store, &plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(
            result.value(0, 0, exec.interner()),
            Value::Str("then".into())
        );
    }

    #[test]
    fn missing_column_reports_schema() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let lit = plan.add(Operator::Literal(vec!["a".into()]), vec![]);
        let select = plan.add(
            Operator::Select {
                column: "nope".into(),
                value: "a".into(),
            },
            vec![lit],
        );
        plan.set_root(select);
        let mut exec = Executor::new();
        let err = exec
            .eval_plan(&mut store, &plan, &Table::new(vec!["item".into()]))
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    /// Regression test for the `as_key` tag collision: the old string
    /// rendering made `Str("node:<k>")` join/dedup against `Node(k)` and
    /// `Str("true")` against `Bool(true)`.  With typed keys these are four
    /// distinct cells.
    #[test]
    fn string_cells_never_collide_with_node_or_bool_cells() {
        let (mut store, doc) = store_with_curriculum();
        let course = seed_course(&mut store, doc, "c1")[0];

        // A document string column that *spells* the old rendering of the
        // course node must not join against the node itself.
        let mut exec = Executor::new();
        let forged = format!("node:{course}");
        let mut plan = Plan::new();
        let strings = plan.add(Operator::Literal(vec![forged.clone()]), vec![]);
        let rec = plan.add(Operator::RecInput, vec![]);
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![strings, rec],
        );
        plan.set_root(join);
        let result = exec
            .eval_plan(&mut store, &plan, &Table::from_nodes(&[course]))
            .unwrap();
        assert!(
            result.is_empty(),
            "string '{forged}' must not join against the node it spells"
        );

        // Dedup: a table holding Node(k), Sym("node:<k>"), Bool(true) and
        // Sym("true") has four distinct rows, and difference removes none
        // of the string rows when subtracting the node/bool rows.
        let interner = exec.interner_mut();
        let forged_sym = Key::Sym(interner.intern(&forged));
        let true_sym = Key::Sym(interner.intern("true"));
        let mixed = Table::from_columns(
            vec!["item".into()],
            vec![vec![
                Key::Node(course),
                forged_sym,
                Key::Bool(true),
                true_sym,
                Key::Bool(true),
            ]],
        );
        assert_eq!(mixed.distinct().len(), 4);
        let typed_only = Table::from_columns(
            vec!["item".into()],
            vec![vec![Key::Node(course), Key::Bool(true)]],
        );
        let mut diff_plan = Plan::new();
        let lits = diff_plan.add(
            Operator::Literal(vec![forged.clone(), "true".into()]),
            vec![],
        );
        let rec_typed = diff_plan.add(Operator::RecInput, vec![]);
        let diff = diff_plan.add(Operator::Difference, vec![lits, rec_typed]);
        diff_plan.set_root(diff);
        let surviving = exec.eval_plan(&mut store, &diff_plan, &typed_only).unwrap();
        assert_eq!(
            surviving.len(),
            2,
            "subtracting Node(k)/Bool(true) rows must remove neither string row"
        );

        // Select: a node cell never matches a string literal, even the one
        // that spells its old rendering.
        let mut plan2 = Plan::new();
        let rec2 = plan2.add(Operator::RecInput, vec![]);
        let select = plan2.add(
            Operator::Select {
                column: "item".into(),
                value: forged.clone(),
            },
            vec![rec2],
        );
        plan2.set_root(select);
        let selected = exec
            .eval_plan(&mut store, &plan2, &Table::from_nodes(&[course]))
            .unwrap();
        assert!(selected.is_empty());
    }

    /// `Executor::default()` must behave like `Executor::new()` — in
    /// particular its iteration limit must not be zero.
    #[test]
    fn default_executor_matches_new() {
        assert_eq!(
            Executor::default().max_iterations,
            Executor::new().max_iterations
        );
        assert!(Executor::default().max_iterations > 0);
    }

    /// Node constructors create a fresh identity per fixpoint *run* even
    /// though they are rec-independent: their tables live in the per-run
    /// volatile cache, never in the persistent static cache.
    #[test]
    fn constructed_nodes_are_fresh_per_run_but_stable_within_one() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let lit = plan.add(Operator::Literal(Vec::new()), vec![]);
        let flag = plan.add(Operator::Construct("flag".into()), vec![lit]);
        plan.set_root(flag);
        let mut exec = Executor::new();
        let (r1, s1) = exec
            .run_fixpoint(&mut store, &plan, &[], MuStrategy::Mu, false)
            .unwrap();
        let (r2, _) = exec
            .run_fixpoint(&mut store, &plan, &[], MuStrategy::Mu, false)
            .unwrap();
        // Within one run the constructed node is stable (the fixpoint
        // terminates); across runs the identity is fresh.
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        assert!(s1.iterations >= 1);
        assert_ne!(
            r1.item_nodes(),
            r2.item_nodes(),
            "a second run must construct a fresh element"
        );
        // Direct eval_plan calls are each their own scope too.
        let empty = Table::new(vec!["item".into()]);
        let e1 = exec.eval_plan(&mut store, &plan, &empty).unwrap();
        let e2 = exec.eval_plan(&mut store, &plan, &empty).unwrap();
        assert_ne!(e1.item_nodes(), e2.item_nodes());
    }

    /// An empty-seeded run over an id()-using body evaluates to the empty
    /// set — it neither errors for lack of a context document nor resolves
    /// IDs against a stale document from a previous run.
    #[test]
    fn empty_seed_id_lookup_returns_empty_without_stale_context() {
        let (mut store, doc) = store_with_curriculum();
        let plan = q1_plan();
        let mut exec = Executor::new();
        // A first run establishes a derived context document…
        let seed = seed_course(&mut store, doc, "c1");
        exec.run_fixpoint(&mut store, &plan, &seed, MuStrategy::MuDelta, false)
            .unwrap();
        // …which an empty-seeded run must not reuse.
        let (result, _) = exec
            .run_fixpoint(&mut store, &plan, &[], MuStrategy::MuDelta, false)
            .unwrap();
        assert!(result.is_empty());
    }

    /// The `⊚ Eq` Sym↔Int bridge compares numerically only when the symbol
    /// actually parses as an integer; a non-numeric string must not equal
    /// `Int(0)` through a parse fallback.
    #[test]
    fn fun_eq_numeric_bridge_requires_a_numeric_symbol() {
        let mut interner = Interner::new();
        let na = Key::Sym(interner.intern("n/a"));
        let five = Key::Sym(interner.intern("5"));
        assert_eq!(
            apply_fun(FunKind::Eq, na, Key::Int(0), &interner),
            Key::Bool(false)
        );
        assert_eq!(
            apply_fun(FunKind::Ne, na, Key::Int(0), &interner),
            Key::Bool(true)
        );
        assert_eq!(
            apply_fun(FunKind::Eq, five, Key::Int(5), &interner),
            Key::Bool(true)
        );
    }

    /// Acceptance criterion: a static-cache hit hands out a *shared*
    /// handle — the columns of the two results are pointer-identical, no
    /// deep table clone happens.
    #[test]
    fn static_cache_hits_return_shared_handles() {
        let (mut store, _doc) = store_with_curriculum();
        let mut plan = Plan::new();
        let docroot = plan.add(Operator::DocRoot("curriculum.xml".into()), vec![]);
        let courses = plan.add(
            Operator::Step {
                axis: Axis::Descendant,
                test: NodeTest::Name("course".into()),
            },
            vec![docroot],
        );
        plan.set_root(courses);

        let mut exec = Executor::new();
        let empty = Table::new(vec!["item".into()]);
        let first = exec.eval_plan(&mut store, &plan, &empty).unwrap();
        let evals_after_first = exec.static_plan_evals();
        let second = exec.eval_plan(&mut store, &plan, &empty).unwrap();
        assert_eq!(first.len(), 4);
        assert!(
            first.shares_storage(&second),
            "second evaluation must return a shared handle, not a deep clone"
        );
        assert_eq!(
            exec.static_plan_evals(),
            evals_after_first,
            "no rec-independent node re-evaluated"
        );
        assert!(exec.static_cache_hits() >= 1);
    }

    /// The static cache survives across fixpoint runs (the per-item loop
    /// shape) but is invalidated when a document is loaded afterwards.
    #[test]
    fn static_cache_persists_across_runs_and_invalidates_on_load() {
        let (mut store, doc) = store_with_curriculum();
        // A body with a rec-independent arm: doc-rooted course scan joined
        // against the recursion input's prerequisite codes.
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        // Rec-independent arm: every c4 course, scanned from the doc root.
        let docroot = plan.add(Operator::DocRoot("curriculum.xml".into()), vec![]);
        let all = plan.add(
            Operator::Step {
                axis: Axis::Descendant,
                test: NodeTest::Name("course".into()),
            },
            vec![docroot],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![all],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c4".into(),
            },
            vec![attr],
        );
        let fixed = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        let union = plan.add(Operator::Union, vec![lookup, fixed]);
        plan.set_root(union);

        let mut exec = Executor::new();
        let seed = seed_course(&mut store, doc, "c1");
        exec.run_fixpoint(&mut store, &plan, &seed, MuStrategy::MuDelta, false)
            .unwrap();
        let evals_first_run = exec.static_plan_evals();

        // Second run over a different seed: rec-independent work is free.
        let seed2 = seed_course(&mut store, doc, "c2");
        exec.run_fixpoint(&mut store, &plan, &seed2, MuStrategy::MuDelta, false)
            .unwrap();
        assert_eq!(
            exec.static_plan_evals(),
            evals_first_run,
            "persistent executor must not re-evaluate rec-independent nodes"
        );

        // Loading a document bumps the store epoch and drops the cache.
        store
            .parse_document_with_uri("late.xml", "<late/>")
            .unwrap();
        exec.run_fixpoint(&mut store, &plan, &seed, MuStrategy::MuDelta, false)
            .unwrap();
        assert!(
            exec.static_plan_evals() > evals_first_run,
            "document load must invalidate the static cache"
        );
    }

    /// The batched multi-source driver computes, for every seed of the
    /// batch, exactly the per-seed fixpoint — grouped by seed, in document
    /// order within each group — while evaluating the shared body only
    /// `max(per-seed depth)` times.
    #[test]
    fn batched_fixpoint_matches_per_seed_runs() {
        let (mut store, doc) = store_with_curriculum();
        let plan = q1_plan();
        let batched_plan = plan.seed_carried().expect("Q1 body is seed-local");
        let seeds: Vec<NodeId> = ["c1", "c2", "c3"]
            .iter()
            .flat_map(|code| seed_course(&mut store, doc, code))
            .collect();

        for strategy in [MuStrategy::Mu, MuStrategy::MuDelta] {
            for sharing in [BatchSharing::PerSeed, BatchSharing::DistinctNodes] {
                let (table, stats) = {
                    let mut exec = Executor::new();
                    exec.run_fixpoint_batched(
                        &mut store,
                        &batched_plan,
                        &seeds,
                        strategy,
                        false,
                        sharing,
                    )
                    .unwrap()
                };
                assert_eq!(table.columns(), [SEED_COLUMN, "item"]);
                assert_eq!(stats.batch_seeds, 3);

                // Reference: one per-seed run per seed, concatenated.
                let mut expected_rows: Vec<(NodeId, NodeId)> = Vec::new();
                let mut max_depth = 0;
                let mut evaluations = 0;
                for &seed in &seeds {
                    let mut exec = Executor::new();
                    let (result, s) = exec
                        .run_fixpoint(&mut store, &plan, &[seed], strategy, false)
                        .unwrap();
                    max_depth = max_depth.max(s.iterations);
                    evaluations += s.body_evaluations;
                    for node in result.item_nodes() {
                        expected_rows.push((seed, node));
                    }
                }
                let seed_idx = table.column_index(SEED_COLUMN).unwrap();
                let item_idx = table.column_index("item").unwrap();
                let rows: Vec<(NodeId, NodeId)> = (0..table.len())
                    .map(|r| {
                        (
                            table.key(r, seed_idx).as_node().unwrap(),
                            table.key(r, item_idx).as_node().unwrap(),
                        )
                    })
                    .collect();
                assert_eq!(
                    rows,
                    expected_rows,
                    "strategy {} sharing {}",
                    strategy.name(),
                    sharing.name()
                );
                assert_eq!(stats.iterations, max_depth, "depth is the max over seeds");
                assert!(
                    stats.body_evaluations < evaluations,
                    "batching must share body evaluations ({} vs {evaluations} per-seed)",
                    stats.body_evaluations
                );
            }
        }
    }

    /// An empty batch is a no-op: empty `(seed, item)` table, zero
    /// iterations, no context-document derivation from stale state.
    #[test]
    fn batched_fixpoint_empty_seed_set() {
        let (mut store, _doc) = store_with_curriculum();
        let batched_plan = q1_plan().seed_carried().unwrap();
        let mut exec = Executor::new();
        let (table, stats) = exec
            .run_fixpoint_batched(
                &mut store,
                &batched_plan,
                &[],
                MuStrategy::MuDelta,
                false,
                BatchSharing::default(),
            )
            .unwrap();
        assert!(table.is_empty());
        assert_eq!(table.columns(), [SEED_COLUMN, "item"]);
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.batch_seeds, 0);
    }

    /// The seed-inclusive reading (`seed_in_result`) starts each seed's
    /// accumulator from the seed itself.
    #[test]
    fn batched_fixpoint_seed_in_result_includes_seeds() {
        let (mut store, doc) = store_with_curriculum();
        let batched_plan = q1_plan().seed_carried().unwrap();
        let seeds = seed_course(&mut store, doc, "c1");
        let mut exec = Executor::new();
        let (table, _) = exec
            .run_fixpoint_batched(
                &mut store,
                &batched_plan,
                &seeds,
                MuStrategy::MuDelta,
                true,
                BatchSharing::DistinctNodes,
            )
            .unwrap();
        let items = table.col(1);
        assert!(
            items.contains(&Key::Node(seeds[0])),
            "seed must be in its own group"
        );
        assert_eq!(table.len(), 4); // c1 plus its closure {c2, c3, c4}
    }

    /// A parallel batched run (`threads > 1`) is bit-identical to the
    /// sequential driver — same table, same stats — for every strategy ×
    /// sharing × seed-inclusion combination and several shard counts
    /// (including more shards than seeds).  The Q1 body contains an
    /// `IdLookup`, so this also exercises the shared id-probe memo from
    /// multiple worker threads.
    #[test]
    fn parallel_batched_matches_sequential() {
        let (mut store, doc) = store_with_curriculum();
        let batched_plan = q1_plan().seed_carried().unwrap();
        let seeds: Vec<NodeId> = ["c1", "c2", "c3", "c4"]
            .iter()
            .flat_map(|code| seed_course(&mut store, doc, code))
            .collect();

        for strategy in [MuStrategy::Mu, MuStrategy::MuDelta] {
            for sharing in [BatchSharing::PerSeed, BatchSharing::DistinctNodes] {
                for seed_in_result in [false, true] {
                    let (expected, expected_stats) = Executor::new()
                        .run_fixpoint_batched(
                            &mut store,
                            &batched_plan,
                            &seeds,
                            strategy,
                            seed_in_result,
                            sharing,
                        )
                        .unwrap();
                    for threads in [2, 3, 8] {
                        let mut exec = Executor::new();
                        exec.set_threads(threads);
                        let (table, stats) = exec
                            .run_fixpoint_batched(
                                &mut store,
                                &batched_plan,
                                &seeds,
                                strategy,
                                seed_in_result,
                                sharing,
                            )
                            .unwrap();
                        let label = format!(
                            "threads {threads} strategy {} sharing {} seed_in_result {seed_in_result}",
                            strategy.name(),
                            sharing.name()
                        );
                        assert_eq!(table, expected, "{label}");
                        assert_eq!(stats, expected_stats, "{label}");
                    }
                }
            }
        }
    }

    /// Worker executors persist: a second parallel run on the same
    /// executor reuses them (and still matches the sequential result).
    /// `set_threads(0)` clamps to the sequential setting.
    #[test]
    fn parallel_batched_workers_persist_across_runs() {
        let (mut store, doc) = store_with_curriculum();
        let batched_plan = q1_plan().seed_carried().unwrap();
        let seeds: Vec<NodeId> = ["c1", "c2"]
            .iter()
            .flat_map(|code| seed_course(&mut store, doc, code))
            .collect();
        let (expected, _) = Executor::new()
            .run_fixpoint_batched(
                &mut store,
                &batched_plan,
                &seeds,
                MuStrategy::MuDelta,
                false,
                BatchSharing::PerSeed,
            )
            .unwrap();

        let mut exec = Executor::new();
        exec.set_threads(2);
        assert_eq!(exec.threads(), 2);
        for _ in 0..2 {
            let (table, _) = exec
                .run_fixpoint_batched(
                    &mut store,
                    &batched_plan,
                    &seeds,
                    MuStrategy::MuDelta,
                    false,
                    BatchSharing::PerSeed,
                )
                .unwrap();
            assert_eq!(table, expected);
        }
        assert_eq!(exec.workers.len(), 2, "workers are created once and kept");

        exec.set_threads(0);
        assert_eq!(exec.threads(), 1, "set_threads clamps to sequential");
    }

    /// Projection shares column storage with its input (zero-copy π).
    #[test]
    fn projection_shares_column_storage() {
        let (mut store, doc) = store_with_curriculum();
        let courses = {
            let root = store.document_element(doc).unwrap();
            store.axis_nodes(root, Axis::Child, &NodeTest::Name("course".into()))
        };
        let input = Table::from_nodes(&courses);
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let project = plan.add(
            Operator::Project(vec![("renamed".into(), "item".into())]),
            vec![rec],
        );
        plan.set_root(project);
        let mut exec = Executor::new();
        let result = exec.eval_plan(&mut store, &plan, &input).unwrap();
        assert_eq!(result.columns(), ["renamed"]);
        assert!(
            result.shares_storage(&input),
            "π must re-arrange column handles, not copy cells"
        );
    }
}
