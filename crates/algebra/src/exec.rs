//! Plan execution over relational encodings of the node store.
//!
//! The executor evaluates a [`Plan`] bottom-up (with memoisation over the
//! DAG) into [`Table`]s.  Its most important entry point for the
//! reproduction is [`Executor::run_fixpoint`]: given a compiled recursion
//! body plan and a seed node set, it drives the Naïve (`µ`) or Delta (`µ∆`)
//! iteration and records how many rows were fed back into the body — the
//! quantity Table 2 of the paper reports.

use std::collections::{HashMap, HashSet};

use xqy_xdm::{DocId, NodeId, NodeSet, NodeStore};

use crate::error::AlgebraError;
use crate::plan::{FunKind, Operator, Plan, PlanNodeId};
use crate::Result;

/// A cell value in a relational table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A node reference.
    Node(NodeId),
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// String rendering used by selections and joins on mixed columns.
    pub fn as_key(&self) -> String {
        match self {
            Value::Node(n) => format!("node:{n}"),
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// The node, if this value is one.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }
}

/// A flat relational table: named columns and rows of [`Value`]s.
///
/// The executor works with *set* semantics: operators that would produce
/// duplicate rows may keep them, but the fixpoint driver always reduces its
/// accumulator to a set of nodes, matching the set-based IFP semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Row data; every row has `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// A single-column `item` table of nodes.
    pub fn from_nodes(nodes: &[NodeId]) -> Self {
        Table {
            columns: vec!["item".to_string()],
            rows: nodes.iter().map(|&n| vec![Value::Node(n)]).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns.iter().position(|c| c == name).ok_or_else(|| {
            AlgebraError::Execution(format!(
                "column '{name}' not found (have: {})",
                self.columns.join(", ")
            ))
        })
    }

    /// The node values of the `item` column (non-node rows are skipped).
    pub fn item_nodes(&self) -> Vec<NodeId> {
        let Ok(idx) = self.column_index("item") else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r[idx].as_node()).collect()
    }

    /// Deduplicate rows (set semantics).
    pub fn distinct(mut self) -> Table {
        let mut seen = HashSet::new();
        self.rows.retain(|row| {
            let key: Vec<String> = row.iter().map(Value::as_key).collect();
            seen.insert(key)
        });
        self
    }
}

/// Strategy of the fixpoint driver — mirrors the µ / µ∆ operator pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MuStrategy {
    /// The Naïve operator µ.
    #[default]
    Mu,
    /// The Delta operator µ∆.
    MuDelta,
}

impl MuStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MuStrategy::Mu => "mu",
            MuStrategy::MuDelta => "mu-delta",
        }
    }
}

/// Statistics of one fixpoint execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Iterations of the do-while loop.
    pub iterations: usize,
    /// Total rows fed into the recursion body plan across all evaluations.
    pub rows_fed_back: u64,
    /// Number of body plan evaluations.
    pub body_evaluations: usize,
    /// Rows in the final result.
    pub result_rows: usize,
}

/// The plan executor.
pub struct Executor<'s> {
    store: &'s mut NodeStore,
    /// Document used to resolve `IdLookup` when the looked-up strings do not
    /// come with an obvious anchor node; set from the fixpoint seed.
    context_doc: Option<DocId>,
    /// Cache of plan nodes that do not depend on the recursion input —
    /// their tables are reused across fixpoint iterations.
    static_cache: HashMap<PlanNodeId, Table>,
    /// Fingerprint of the plan the static cache was built for; evaluating a
    /// different plan invalidates the cache.
    static_cache_key: Option<u64>,
    /// Maximum fixpoint iterations before reporting divergence.
    pub max_iterations: usize,
}

impl<'s> Executor<'s> {
    /// Create an executor over `store`.
    pub fn new(store: &'s mut NodeStore) -> Self {
        Executor {
            store,
            context_doc: None,
            static_cache: HashMap::new(),
            static_cache_key: None,
            max_iterations: 100_000,
        }
    }

    /// Set the document used for `IdLookup` resolution.
    pub fn set_context_doc(&mut self, doc: DocId) {
        self.context_doc = Some(doc);
    }

    /// Evaluate `plan` with the recursion input bound to `rec` (pass an
    /// empty table when the plan has no `RecInput` leaf).
    pub fn eval_plan(&mut self, plan: &Plan, rec: &Table) -> Result<Table> {
        let root = plan
            .root()
            .ok_or_else(|| AlgebraError::InvalidPlan("plan has no root".into()))?;
        // The rec-independent cache is only valid for the plan it was built
        // for (plan node ids are arena indices, not globally unique).
        let key = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            format!("{plan:?}").hash(&mut hasher);
            hasher.finish()
        };
        if self.static_cache_key != Some(key) {
            self.static_cache.clear();
            self.static_cache_key = Some(key);
        }
        let rec_dependent: HashSet<PlanNodeId> = plan
            .dependents_of(&plan.rec_inputs())
            .into_iter()
            .chain(plan.rec_inputs())
            .collect();
        let mut memo: HashMap<PlanNodeId, Table> = HashMap::new();
        self.eval_node(plan, root, rec, &rec_dependent, &mut memo)
    }

    fn eval_node(
        &mut self,
        plan: &Plan,
        id: PlanNodeId,
        rec: &Table,
        rec_dependent: &HashSet<PlanNodeId>,
        memo: &mut HashMap<PlanNodeId, Table>,
    ) -> Result<Table> {
        if let Some(cached) = memo.get(&id) {
            return Ok(cached.clone());
        }
        if !rec_dependent.contains(&id) {
            if let Some(cached) = self.static_cache.get(&id) {
                return Ok(cached.clone());
            }
        }
        let node = plan.node(id).clone();
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            inputs.push(self.eval_node(plan, input, rec, rec_dependent, memo)?);
        }
        let table = self.apply(plan, &node.op, &node.inputs, inputs, rec)?;
        if rec_dependent.contains(&id) {
            memo.insert(id, table.clone());
        } else {
            self.static_cache.insert(id, table.clone());
        }
        Ok(table)
    }

    fn apply(
        &mut self,
        plan: &Plan,
        op: &Operator,
        input_ids: &[PlanNodeId],
        mut inputs: Vec<Table>,
        rec: &Table,
    ) -> Result<Table> {
        match op {
            Operator::RecInput => Ok(rec.clone()),
            Operator::Literal(values) => Ok(Table {
                columns: vec!["item".into()],
                rows: values.iter().map(|v| vec![Value::Str(v.clone())]).collect(),
            }),
            Operator::DocRoot(uri) => {
                let doc = self
                    .store
                    .doc(uri)
                    .ok_or_else(|| AlgebraError::Execution(format!("document not found: {uri}")))?;
                let node = self.store.document_node(doc).ok_or_else(|| {
                    AlgebraError::Execution(format!("document has no root: {uri}"))
                })?;
                Ok(Table::from_nodes(&[node]))
            }
            Operator::Project(renames) => {
                let input = inputs.remove(0);
                let mut indices = Vec::with_capacity(renames.len());
                for (_, source) in renames {
                    indices.push(input.column_index(source)?);
                }
                Ok(Table {
                    columns: renames.iter().map(|(out, _)| out.clone()).collect(),
                    rows: input
                        .rows
                        .iter()
                        .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
                        .collect(),
                })
            }
            Operator::Select { column, value } => {
                let input = inputs.remove(0);
                let idx = input.column_index(column)?;
                let rows = input
                    .rows
                    .into_iter()
                    .filter(|row| row[idx].as_key() == *value)
                    .collect();
                Ok(Table {
                    columns: input.columns,
                    rows,
                })
            }
            Operator::Join { left, right } => {
                let right_table = inputs.remove(1);
                let left_table = inputs.remove(0);
                let li = left_table.column_index(left)?;
                let ri = right_table.column_index(right)?;
                // Build a hash index over the right input.
                let mut index: HashMap<String, Vec<usize>> = HashMap::new();
                for (row_idx, row) in right_table.rows.iter().enumerate() {
                    index.entry(row[ri].as_key()).or_default().push(row_idx);
                }
                // Output columns: left columns plus the right columns except
                // the join column, suffixing clashes.
                let mut columns = left_table.columns.clone();
                let mut right_cols = Vec::new();
                for (i, c) in right_table.columns.iter().enumerate() {
                    if i == ri {
                        continue;
                    }
                    let name = if columns.contains(c) {
                        format!("{c}_r")
                    } else {
                        c.clone()
                    };
                    columns.push(name);
                    right_cols.push(i);
                }
                let mut rows = Vec::new();
                for lrow in &left_table.rows {
                    if let Some(matches) = index.get(&lrow[li].as_key()) {
                        for &m in matches {
                            let mut out = lrow.clone();
                            for &ci in &right_cols {
                                out.push(right_table.rows[m][ci].clone());
                            }
                            rows.push(out);
                        }
                    }
                }
                Ok(Table { columns, rows })
            }
            Operator::Cross => {
                let right = inputs.remove(1);
                let left = inputs.remove(0);
                let mut columns = left.columns.clone();
                for c in &right.columns {
                    let name = if columns.contains(c) {
                        format!("{c}_r")
                    } else {
                        c.clone()
                    };
                    columns.push(name);
                }
                let mut rows = Vec::new();
                for l in &left.rows {
                    for r in &right.rows {
                        let mut out = l.clone();
                        out.extend(r.clone());
                        rows.push(out);
                    }
                }
                Ok(Table { columns, rows })
            }
            Operator::Distinct => Ok(inputs.remove(0).distinct()),
            Operator::Union => {
                let right = inputs.remove(1);
                let mut left = inputs.remove(0);
                if left.columns != right.columns {
                    return Err(AlgebraError::Execution(
                        "union over tables with different schemas".into(),
                    ));
                }
                left.rows.extend(right.rows);
                Ok(left.distinct())
            }
            Operator::Difference => {
                let right = inputs.remove(1);
                let left = inputs.remove(0);
                let keys: HashSet<Vec<String>> = right
                    .rows
                    .iter()
                    .map(|r| r.iter().map(Value::as_key).collect())
                    .collect();
                let rows = left
                    .rows
                    .into_iter()
                    .filter(|r| !keys.contains(&r.iter().map(Value::as_key).collect::<Vec<_>>()))
                    .collect();
                Ok(Table {
                    columns: left.columns,
                    rows,
                })
            }
            Operator::Count { group_by } => {
                let input = inputs.remove(0);
                match group_by {
                    None => Ok(Table {
                        columns: vec!["count".into()],
                        rows: vec![vec![Value::Int(input.len() as i64)]],
                    }),
                    Some(col) => {
                        let idx = input.column_index(col)?;
                        let mut groups: HashMap<String, (Value, i64)> = HashMap::new();
                        for row in &input.rows {
                            let key = row[idx].as_key();
                            let entry = groups.entry(key).or_insert((row[idx].clone(), 0));
                            entry.1 += 1;
                        }
                        Ok(Table {
                            columns: vec![col.clone(), "count".into()],
                            rows: groups
                                .into_values()
                                .map(|(v, c)| vec![v, Value::Int(c)])
                                .collect(),
                        })
                    }
                }
            }
            Operator::Fun { kind, left, right } => {
                let input = inputs.remove(0);
                let li = input.column_index(left)?;
                let ri = input.column_index(right)?;
                let mut columns = input.columns.clone();
                columns.push("res".into());
                let rows = input
                    .rows
                    .into_iter()
                    .map(|mut row| {
                        let result = apply_fun(*kind, &row[li], &row[ri]);
                        row.push(result);
                        row
                    })
                    .collect();
                Ok(Table { columns, rows })
            }
            Operator::RowTag | Operator::RowNum => {
                let input = inputs.remove(0);
                let mut columns = input.columns.clone();
                columns.push(if matches!(op, Operator::RowTag) {
                    "tag".into()
                } else {
                    "rownum".into()
                });
                let rows = input
                    .rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut row)| {
                        row.push(Value::Int(i as i64 + 1));
                        row
                    })
                    .collect();
                Ok(Table { columns, rows })
            }
            Operator::Step { axis, test } => {
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let mut rows = Vec::new();
                for row in &input.rows {
                    let Some(node) = row[idx].as_node() else {
                        continue;
                    };
                    for result in self.store.axis_nodes(node, *axis, test) {
                        let mut out = row.clone();
                        out[idx] = Value::Node(result);
                        rows.push(out);
                    }
                }
                Ok(Table {
                    columns: input.columns,
                    rows,
                }
                .distinct())
            }
            Operator::AttrValue(name) => {
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let mut rows = Vec::new();
                for row in &input.rows {
                    let Some(node) = row[idx].as_node() else {
                        continue;
                    };
                    if let Some(value) = self.store.attribute_value(node, name) {
                        let mut out = row.clone();
                        out[idx] = Value::Str(value.to_string());
                        rows.push(out);
                    }
                }
                Ok(Table {
                    columns: input.columns,
                    rows,
                })
            }
            Operator::StringValue => {
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let rows = input
                    .rows
                    .iter()
                    .map(|row| {
                        let mut out = row.clone();
                        if let Some(node) = row[idx].as_node() {
                            out[idx] = Value::Str(self.store.string_value(node));
                        }
                        out
                    })
                    .collect();
                Ok(Table {
                    columns: input.columns,
                    rows,
                })
            }
            Operator::IdLookup => {
                let input = inputs.remove(0);
                let idx = input.column_index("item")?;
                let doc = self.context_doc.ok_or_else(|| {
                    AlgebraError::Execution(
                        "IdLookup requires a context document (Executor::set_context_doc)".into(),
                    )
                })?;
                let mut rows = Vec::new();
                for row in &input.rows {
                    let key = row[idx].as_key();
                    for token in key.split_whitespace() {
                        if let Some(node) = self.store.lookup_id(doc, token) {
                            let mut out = row.clone();
                            out[idx] = Value::Node(node);
                            rows.push(out);
                        }
                    }
                }
                Ok(Table {
                    columns: input.columns,
                    rows,
                }
                .distinct())
            }
            Operator::IfThenElse => {
                let else_table = inputs.remove(2);
                let then_table = inputs.remove(1);
                let cond = inputs.remove(0);
                let truthy = effective_boolean(&cond);
                Ok(if truthy { then_table } else { else_table })
            }
            Operator::Construct(name) => {
                let input = inputs.remove(0);
                let frag = self.store.new_fragment();
                let element = self
                    .store
                    .create_element(frag, xqy_xdm::QName::local(name.clone()));
                let _ = input;
                Ok(Table::from_nodes(&[element]))
            }
            Operator::Mu | Operator::MuDelta => {
                // input 0: seed plan result; input 1 is the body sub-plan,
                // which must be re-evaluated per iteration — so it cannot be
                // passed as a pre-computed table.  We re-drive it here.
                let seed = inputs.remove(0);
                let body_root = input_ids[1];
                let body_plan = subplan(plan, body_root);
                let strategy = if matches!(op, Operator::Mu) {
                    MuStrategy::Mu
                } else {
                    MuStrategy::MuDelta
                };
                let (table, _stats) =
                    self.run_fixpoint(&body_plan, &seed.item_nodes(), strategy, false)?;
                Ok(table)
            }
        }
    }

    /// Drive a fixpoint over `body` seeded with `seed` using `strategy`.
    ///
    /// With `seed_in_result = false` the accumulation starts from the body
    /// applied to the seed (Definition 2.1); with `true` it starts from the
    /// seed itself (the paper's Example 2.4 reading).
    pub fn run_fixpoint(
        &mut self,
        body: &Plan,
        seed: &[NodeId],
        strategy: MuStrategy,
        seed_in_result: bool,
    ) -> Result<(Table, ExecStats)> {
        if let Some(first) = seed.first() {
            // Resolve id() lookups against the seed's document by default.
            if self.context_doc.is_none() {
                self.context_doc = Some(DocId(first.doc));
            }
        }
        let mut stats = ExecStats::default();
        // The accumulator lives as a NodeSet bitset for the whole run:
        // union/except are word-parallel and the termination tests are
        // emptiness checks, so no HashSet is built and no re-sort happens
        // per iteration.  Document-ordered vectors are materialized only to
        // feed the body plan (and once at the end, for the result table).
        let mut res: NodeSet = if seed_in_result {
            NodeSet::from_nodes(seed.iter().copied())
        } else {
            NodeSet::from_nodes(self.eval_body(body, seed, &mut stats)?)
        };
        // Mu feeds the whole accumulator back each round and needs it in
        // document order; MuDelta instead tracks ∆ (starting as a copy of
        // the initial accumulation) and only materializes that.  Each
        // strategy pays only for the state it reads.
        let (mut res_vec, mut delta) = match strategy {
            MuStrategy::Mu => (res.to_vec(self.store), NodeSet::new()),
            MuStrategy::MuDelta => (Vec::new(), res.clone()),
        };
        loop {
            if stats.iterations >= self.max_iterations {
                return Err(AlgebraError::NoFixpoint {
                    iterations: stats.iterations,
                });
            }
            stats.iterations += 1;
            match strategy {
                MuStrategy::Mu => {
                    let step = self.eval_body(body, &res_vec, &mut stats)?;
                    let mut fresh = NodeSet::from_nodes(step);
                    fresh.except_in_place(&res);
                    if fresh.is_empty() {
                        break;
                    }
                    res.union_in_place(&fresh);
                    res_vec = res.to_vec(self.store);
                }
                MuStrategy::MuDelta => {
                    let delta_vec = delta.to_vec(self.store);
                    let step = self.eval_body(body, &delta_vec, &mut stats)?;
                    delta = NodeSet::from_nodes(step);
                    delta.except_in_place(&res);
                    if delta.is_empty() {
                        res_vec = res.to_vec(self.store);
                        break;
                    }
                    res.union_in_place(&delta);
                }
            }
        }
        stats.result_rows = res.len();
        Ok((Table::from_nodes(&res_vec), stats))
    }

    fn eval_body(
        &mut self,
        body: &Plan,
        input: &[NodeId],
        stats: &mut ExecStats,
    ) -> Result<Vec<NodeId>> {
        stats.rows_fed_back += input.len() as u64;
        stats.body_evaluations += 1;
        let rec = Table::from_nodes(input);
        let out = self.eval_plan(body, &rec)?;
        Ok(out.item_nodes())
    }
}

fn apply_fun(kind: FunKind, left: &Value, right: &Value) -> Value {
    match kind {
        FunKind::Eq => Value::Bool(left.as_key() == right.as_key()),
        FunKind::Ne => Value::Bool(left.as_key() != right.as_key()),
        FunKind::Lt | FunKind::Gt => {
            let (l, r) = (numeric(left), numeric(right));
            Value::Bool(if matches!(kind, FunKind::Lt) {
                l < r
            } else {
                l > r
            })
        }
        FunKind::Add | FunKind::Sub => {
            let (l, r) = (numeric(left), numeric(right));
            Value::Int(if matches!(kind, FunKind::Add) {
                l + r
            } else {
                l - r
            })
        }
    }
}

fn numeric(value: &Value) -> i64 {
    match value {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        Value::Str(s) => s.trim().parse().unwrap_or(0),
        Value::Node(_) => 0,
    }
}

/// Effective boolean value of a condition table: a single `count`/integer
/// cell is tested against zero; otherwise any row counts as true.
fn effective_boolean(table: &Table) -> bool {
    if table.columns.len() == 1 && table.rows.len() == 1 {
        if let Value::Int(i) = &table.rows[0][0] {
            return *i != 0;
        }
        if let Value::Bool(b) = &table.rows[0][0] {
            return *b;
        }
    }
    !table.is_empty()
}

/// Extract the sub-plan rooted at `root` as its own [`Plan`] (used to
/// re-drive the body input of a µ / µ∆ operator).
fn subplan(plan: &Plan, root: PlanNodeId) -> Plan {
    let mut mapping: HashMap<PlanNodeId, PlanNodeId> = HashMap::new();
    let mut out = Plan::new();
    let new_root = copy_into(plan, root, &mut out, &mut mapping);
    out.set_root(new_root);
    out
}

fn copy_into(
    plan: &Plan,
    id: PlanNodeId,
    out: &mut Plan,
    mapping: &mut HashMap<PlanNodeId, PlanNodeId>,
) -> PlanNodeId {
    if let Some(&mapped) = mapping.get(&id) {
        return mapped;
    }
    let node = plan.node(id).clone();
    let inputs = node
        .inputs
        .iter()
        .map(|&i| copy_into(plan, i, out, mapping))
        .collect();
    let new_id = out.add(node.op, inputs);
    mapping.insert(id, new_id);
    new_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::{Axis, NodeTest};

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
    </curriculum>"#;

    fn store_with_curriculum() -> (NodeStore, DocId) {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document_with_uri("curriculum.xml", CURRICULUM)
            .unwrap();
        store.register_id_attribute(doc, "code");
        (store, doc)
    }

    /// The Q1 recursion body as a hand-built plan.
    fn q1_plan() -> Plan {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        plan.set_root(lookup);
        plan
    }

    fn seed_course(store: &mut NodeStore, doc: DocId, code: &str) -> Vec<NodeId> {
        let root = store.document_element(doc).unwrap();
        store
            .axis_nodes(root, Axis::Child, &NodeTest::Name("course".into()))
            .into_iter()
            .filter(|&c| store.attribute_value(c, "code") == Some(code))
            .collect()
    }

    #[test]
    fn step_and_select_operators() {
        let (mut store, doc) = store_with_curriculum();
        let root_elem = store.document_element(doc).unwrap();
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let courses = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("course".into()),
            },
            vec![rec],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![courses],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c2".into(),
            },
            vec![attr],
        );
        let back = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        plan.set_root(back);

        let mut exec = Executor::new(&mut store);
        let result = exec
            .eval_plan(&plan, &Table::from_nodes(&[root_elem]))
            .unwrap();
        assert_eq!(result.len(), 1);
        let node = result.item_nodes()[0];
        assert_eq!(store.attribute_value(node, "code"), Some("c2"));
    }

    #[test]
    fn mu_computes_transitive_closure() {
        let (mut store, doc) = store_with_curriculum();
        let seed = seed_course(&mut store, doc, "c1");
        let plan = q1_plan();
        let mut exec = Executor::new(&mut store);
        let (result, stats) = exec
            .run_fixpoint(&plan, &seed, MuStrategy::Mu, false)
            .unwrap();
        let mut codes: Vec<String> = result
            .item_nodes()
            .iter()
            .map(|&n| store.attribute_value(n, "code").unwrap().to_string())
            .collect();
        codes.sort();
        assert_eq!(codes, vec!["c2", "c3", "c4"]);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn mu_delta_matches_mu_and_feeds_fewer_rows() {
        let (mut store, doc) = store_with_curriculum();
        let seed = seed_course(&mut store, doc, "c1");
        let plan = q1_plan();

        let (naive_result, naive_stats) = {
            let mut exec = Executor::new(&mut store);
            exec.run_fixpoint(&plan, &seed, MuStrategy::Mu, false)
                .unwrap()
        };
        let (delta_result, delta_stats) = {
            let mut exec = Executor::new(&mut store);
            exec.run_fixpoint(&plan, &seed, MuStrategy::MuDelta, false)
                .unwrap()
        };
        let mut a = naive_result.item_nodes();
        let mut b = delta_result.item_nodes();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(delta_stats.rows_fed_back < naive_stats.rows_fed_back);
    }

    #[test]
    fn mu_operator_embedded_in_a_plan() {
        let (mut store, doc) = store_with_curriculum();
        let _ = doc;
        let mut plan = Plan::new();
        // Seed: doc root -> child::course -> select code = c1 (via carry).
        let docroot = plan.add(Operator::DocRoot("curriculum.xml".into()), vec![]);
        let curriculum = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("curriculum".into()),
            },
            vec![docroot],
        );
        let courses = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("course".into()),
            },
            vec![curriculum],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![courses],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c1".into(),
            },
            vec![attr],
        );
        let seed = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        // Body: the Q1 recursion body.
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        let mu = plan.add(Operator::Mu, vec![seed, lookup]);
        plan.set_root(mu);

        let doc_id = store.doc("curriculum.xml").unwrap();
        let mut exec = Executor::new(&mut store);
        exec.set_context_doc(doc_id);
        let result = exec
            .eval_plan(&plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn join_and_count_operators() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let left = plan.add(
            Operator::Literal(vec!["a".into(), "b".into(), "c".into()]),
            vec![],
        );
        let right = plan.add(
            Operator::Literal(vec!["b".into(), "c".into(), "d".into()]),
            vec![],
        );
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![left, right],
        );
        let count = plan.add(Operator::Count { group_by: None }, vec![join]);
        plan.set_root(count);
        let mut exec = Executor::new(&mut store);
        let result = exec
            .eval_plan(&plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.rows[0][0], Value::Int(2));
    }

    #[test]
    fn union_difference_and_distinct() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let a = plan.add(
            Operator::Literal(vec!["x".into(), "y".into(), "y".into()]),
            vec![],
        );
        let b = plan.add(Operator::Literal(vec!["y".into(), "z".into()]), vec![]);
        let union = plan.add(Operator::Union, vec![a, b]);
        plan.set_root(union);
        let mut exec = Executor::new(&mut store);
        let result = exec
            .eval_plan(&plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 3); // x, y, z — set semantics

        let mut plan2 = Plan::new();
        let a = plan2.add(Operator::Literal(vec!["x".into(), "y".into()]), vec![]);
        let b = plan2.add(Operator::Literal(vec!["y".into()]), vec![]);
        let diff = plan2.add(Operator::Difference, vec![a, b]);
        plan2.set_root(diff);
        let result = exec
            .eval_plan(&plan2, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0][0], Value::Str("x".into()));
    }

    #[test]
    fn if_then_else_executes_on_count_condition() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let input = plan.add(Operator::Literal(vec!["a".into()]), vec![]);
        let cond = plan.add(Operator::Count { group_by: None }, vec![input]);
        let then_branch = plan.add(Operator::Literal(vec!["then".into()]), vec![]);
        let else_branch = plan.add(Operator::Literal(vec!["else".into()]), vec![]);
        let ite = plan.add(Operator::IfThenElse, vec![cond, then_branch, else_branch]);
        plan.set_root(ite);
        let mut exec = Executor::new(&mut store);
        let result = exec
            .eval_plan(&plan, &Table::new(vec!["item".into()]))
            .unwrap();
        assert_eq!(result.rows[0][0], Value::Str("then".into()));
    }

    #[test]
    fn missing_column_reports_schema() {
        let mut store = NodeStore::new();
        let mut plan = Plan::new();
        let lit = plan.add(Operator::Literal(vec!["a".into()]), vec![]);
        let select = plan.add(
            Operator::Select {
                column: "nope".into(),
                value: "a".into(),
            },
            vec![lit],
        );
        plan.set_root(select);
        let mut exec = Executor::new(&mut store);
        let err = exec
            .eval_plan(&plan, &Table::new(vec!["item".into()]))
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
