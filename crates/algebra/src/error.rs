//! Errors of the relational substrate.

use std::fmt;

/// Errors raised by plan construction, compilation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// The compiler met an expression outside the supported subset.
    Unsupported(String),
    /// A plan referenced a node id that does not exist.
    InvalidPlan(String),
    /// Execution failed (missing document, schema mismatch, …).
    Execution(String),
    /// A fixpoint did not converge within the configured limits.
    NoFixpoint {
        /// Iterations performed.
        iterations: usize,
    },
    /// The cooperative deadline (`Executor::set_deadline`) passed while a
    /// fixpoint was iterating.  Checked at the per-iteration barrier, so
    /// the run aborts between iterations, never mid-mutation.
    DeadlineExceeded {
        /// Iterations completed when the deadline was detected.
        iterations: usize,
    },
    /// A per-query resource budget was exhausted at the iteration barrier
    /// (after one round of graceful degradation for the memory budget).
    BudgetExceeded {
        /// Which budget: `"memory"` or `"iterations"`.
        budget: String,
        /// Approximate usage when the check failed.
        used: u64,
        /// The configured limit.
        limit: u64,
        /// Iterations completed when the budget tripped.
        iterations: usize,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Unsupported(msg) => {
                write!(
                    f,
                    "expression not supported by the algebraic compiler: {msg}"
                )
            }
            AlgebraError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            AlgebraError::Execution(msg) => write!(f, "plan execution error: {msg}"),
            AlgebraError::NoFixpoint { iterations } => {
                write!(f, "fixpoint did not converge after {iterations} iterations")
            }
            AlgebraError::DeadlineExceeded { iterations } => {
                write!(f, "query deadline exceeded after {iterations} iterations")
            }
            AlgebraError::BudgetExceeded {
                budget,
                used,
                limit,
                iterations,
            } => write!(
                f,
                "{budget} budget exceeded ({used} used, limit {limit}) after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_cause() {
        assert!(AlgebraError::Unsupported("order by".into())
            .to_string()
            .contains("order by"));
        assert!(AlgebraError::NoFixpoint { iterations: 7 }
            .to_string()
            .contains('7'));
    }
}
