#![warn(missing_docs)]

//! # xqy-parser — XQuery (LiXQuery subset) parser with the IFP form
//!
//! This crate turns XQuery source text into the abstract syntax tree the
//! rest of the workspace operates on.  The supported language is a
//! LiXQuery-flavoured subset of XQuery 1.0 — FLWOR expressions, quantified
//! expressions, `if`/`typeswitch`, full path expressions with the major
//! axes and predicates, user-defined functions, direct and computed node
//! constructors, and the built-in functions the paper's queries use —
//! extended with the paper's new syntactic form:
//!
//! ```xquery
//! with $x seeded by e_seed recurse e_rec
//! ```
//!
//! which parses into [`ast::Expr::Fixpoint`].
//!
//! ```
//! use xqy_parser::parse_query;
//!
//! let module = parse_query(
//!     "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1']
//!      recurse $x/id(./prerequisites/pre_code)",
//! ).unwrap();
//! assert!(module.body.is_fixpoint());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{BinaryOp, Expr, FunctionDecl, Literal, QueryModule, SequenceType, UnaryOp};
pub use error::ParseError;
pub use parser::{parse_expr, parse_query};

/// Result alias for parser operations.
pub type Result<T> = std::result::Result<T, ParseError>;

std::thread_local! {
    static PARSE_COUNT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times this thread has invoked the parser ([`parse_query`] or
/// [`parse_expr`]), successfully or not.
///
/// This is the *parse-count hook* of the prepared-query API: callers that
/// promise "parse once, execute many" (e.g. `xqy_ifp::PreparedQuery`) can be
/// audited by snapshotting the counter around the repeated executions.  The
/// counter is thread-local so concurrently running tests do not observe each
/// other's parses.
pub fn parse_count() -> u64 {
    PARSE_COUNT.with(|c| c.get())
}

/// Bump the parse counter; called from inside the parser entry points so
/// the hook cannot be bypassed.
pub(crate) fn note_parse() {
    PARSE_COUNT.with(|c| c.set(c.get() + 1));
}
