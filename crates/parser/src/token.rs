//! Token types produced by the lexer.

use std::fmt;

/// A lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token's first character in the source.
    pub offset: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// The different kinds of tokens.
///
/// XQuery keywords are *contextual*: the lexer emits them as [`TokenKind::Name`]
/// and the parser decides, based on position, whether `for`, `union`, `with`,
/// … act as keywords or as element/function names.  Only unambiguous symbols
/// get their own variants.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A (possibly prefixed) name: `person`, `xs:integer`, `fn:count`, …
    Name(String),
    /// An integer literal.
    Integer(i64),
    /// A decimal/double literal.
    Double(f64),
    /// A string literal (quotes stripped, entities decoded).
    String(String),
    /// A variable reference: `$x` (the `$` is consumed, payload is `x`).
    Variable(String),

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:=`
    Assign,
    /// `::`
    DoubleColon,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Precedes,
    /// `>>`
    Follows,
    /// `|`
    Pipe,
    /// `?`
    Question,
    /// Start of a direct element constructor: `<` immediately followed by a
    /// name character.  The lexer cannot distinguish `<` (less-than) from a
    /// constructor on its own; it emits [`TokenKind::Lt`] and the parser asks
    /// the lexer to re-lex a constructor when grammar position allows one.
    TagOpen(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Name(n) => write!(f, "name '{n}'"),
            TokenKind::Integer(i) => write!(f, "integer {i}"),
            TokenKind::Double(d) => write!(f, "double {d}"),
            TokenKind::String(s) => write!(f, "string \"{s}\""),
            TokenKind::Variable(v) => write!(f, "${v}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Assign => write!(f, "':='"),
            TokenKind::DoubleColon => write!(f, "'::'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::DoubleSlash => write!(f, "'//'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::DotDot => write!(f, "'..'"),
            TokenKind::At => write!(f, "'@'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::Precedes => write!(f, "'<<'"),
            TokenKind::Follows => write!(f, "'>>'"),
            TokenKind::Pipe => write!(f, "'|'"),
            TokenKind::Question => write!(f, "'?'"),
            TokenKind::TagOpen(n) => write!(f, "'<{n}'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

impl TokenKind {
    /// If this token is a name, return it.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            TokenKind::Name(n) => Some(n),
            _ => None,
        }
    }

    /// `true` when the token is the given contextual keyword.
    pub fn is_keyword(&self, kw: &str) -> bool {
        self.as_name() == Some(kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check_is_exact() {
        assert!(TokenKind::Name("return".into()).is_keyword("return"));
        assert!(!TokenKind::Name("returns".into()).is_keyword("return"));
        assert!(!TokenKind::Integer(1).is_keyword("return"));
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(TokenKind::Assign.to_string(), "':='");
        assert_eq!(TokenKind::Variable("x".into()).to_string(), "$x");
        assert_eq!(TokenKind::Name("for".into()).to_string(), "name 'for'");
    }
}
