//! Parse error type.

use std::fmt;

/// An error produced while lexing or parsing XQuery source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
    /// Description of what was expected / what went wrong.
    pub message: String,
}

impl ParseError {
    /// Construct a new parse error.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_offset_and_message() {
        let err = ParseError::new(7, "expected 'return'");
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains("expected 'return'"));
    }
}
