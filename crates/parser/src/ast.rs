//! Abstract syntax tree for the XQuery subset.
//!
//! The AST mirrors LiXQuery's structure (the fragment the paper's Figure 5
//! inference rules are formulated over) plus the paper's new
//! `with $x seeded by e recurse e` form, which becomes [`Expr::Fixpoint`].

use std::collections::HashSet;
use std::fmt;

use xqy_xdm::{Axis, NodeTest};

/// A parsed query module: function/variable declarations plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryModule {
    /// `declare function …` declarations, in source order.
    pub functions: Vec<FunctionDecl>,
    /// `declare variable $v := e;` declarations, in source order.
    pub variables: Vec<(String, Expr)>,
    /// The main expression.
    pub body: Expr,
}

/// A user-defined function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (possibly prefixed, e.g. `local:fix`).
    pub name: String,
    /// Parameter names (without the `$`).
    pub params: Vec<String>,
    /// Declared parameter types (parallel to `params`; informational only).
    pub param_types: Vec<Option<SequenceType>>,
    /// Declared return type (informational only).
    pub return_type: Option<SequenceType>,
    /// Function body.
    pub body: Expr,
}

/// A literal value in the source text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Integer(i64),
    /// Decimal / double literal.
    Double(f64),
    /// String literal.
    String(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// General comparison `=`
    GeneralEq,
    /// General comparison `!=`
    GeneralNe,
    /// General comparison `<`
    GeneralLt,
    /// General comparison `<=`
    GeneralLe,
    /// General comparison `>`
    GeneralGt,
    /// General comparison `>=`
    GeneralGe,
    /// Value comparison `eq`
    ValueEq,
    /// Value comparison `ne`
    ValueNe,
    /// Value comparison `lt`
    ValueLt,
    /// Value comparison `le`
    ValueLe,
    /// Value comparison `gt`
    ValueGt,
    /// Value comparison `ge`
    ValueGe,
    /// Node identity comparison `is`
    Is,
    /// Node order comparison `<<`
    Precedes,
    /// Node order comparison `>>`
    Follows,
    /// Range `to`
    Range,
    /// Addition `+`
    Add,
    /// Subtraction `-`
    Sub,
    /// Multiplication `*`
    Mul,
    /// Division `div`
    Div,
    /// Integer division `idiv`
    IDiv,
    /// Modulo `mod`
    Mod,
    /// Node set union `union` / `|`
    Union,
    /// Node set intersection `intersect`
    Intersect,
    /// Node set difference `except`
    Except,
}

impl BinaryOp {
    /// The operator's surface syntax.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "or",
            BinaryOp::And => "and",
            BinaryOp::GeneralEq => "=",
            BinaryOp::GeneralNe => "!=",
            BinaryOp::GeneralLt => "<",
            BinaryOp::GeneralLe => "<=",
            BinaryOp::GeneralGt => ">",
            BinaryOp::GeneralGe => ">=",
            BinaryOp::ValueEq => "eq",
            BinaryOp::ValueNe => "ne",
            BinaryOp::ValueLt => "lt",
            BinaryOp::ValueLe => "le",
            BinaryOp::ValueGt => "gt",
            BinaryOp::ValueGe => "ge",
            BinaryOp::Is => "is",
            BinaryOp::Precedes => "<<",
            BinaryOp::Follows => ">>",
            BinaryOp::Range => "to",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "div",
            BinaryOp::IDiv => "idiv",
            BinaryOp::Mod => "mod",
            BinaryOp::Union => "union",
            BinaryOp::Intersect => "intersect",
            BinaryOp::Except => "except",
        }
    }

    /// `true` for the general comparisons (`=`, `!=`, `<`, …) which involve
    /// existential quantification over their operand sequences — the reason
    /// they block the syntactic distributivity judgement.
    pub fn is_general_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::GeneralEq
                | BinaryOp::GeneralNe
                | BinaryOp::GeneralLt
                | BinaryOp::GeneralLe
                | BinaryOp::GeneralGt
                | BinaryOp::GeneralGe
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Unary minus.
    Minus,
    /// Unary plus.
    Plus,
}

/// A (simplified) sequence type, as written after `as` or in `typeswitch`
/// cases: an item-type name plus an occurrence indicator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SequenceType {
    /// The item type: `node()`, `item()`, `element(course)`, `xs:integer`, …
    pub item_type: String,
    /// `?`, `*`, `+` or empty.
    pub occurrence: Occurrence,
}

/// Occurrence indicator of a sequence type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly one.
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    ZeroOrMore,
    /// One or more (`+`).
    OneOrMore,
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occ = match self.occurrence {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        };
        write!(f, "{}{}", self.item_type, occ)
    }
}

/// One `case` branch of a `typeswitch`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeswitchCase {
    /// Optional case variable (`case $v as T return …`).
    pub var: Option<String>,
    /// The sequence type to match; `None` for the `default` branch.
    pub seq_type: Option<SequenceType>,
    /// The branch body.
    pub body: Expr,
}

/// Content item of a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstructorContent {
    /// Literal character data.
    Text(String),
    /// An enclosed expression `{ e }`.
    Expr(Expr),
}

/// An XQuery expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Literal),
    /// The empty sequence `()`.
    EmptySequence,
    /// A variable reference `$v`.
    VarRef(String),
    /// The context item `.`.
    ContextItem,
    /// Sequence construction `e1, e2, …`.
    Sequence(Vec<Expr>),
    /// `if (cond) then e1 else e2`.
    If {
        /// The condition (effective boolean value is taken).
        cond: Box<Expr>,
        /// The `then` branch.
        then_branch: Box<Expr>,
        /// The `else` branch.
        else_branch: Box<Expr>,
    },
    /// A single `for` clause with its return body (FLWORs desugar to nested
    /// `For`/`Let`/`If`).
    For {
        /// The bound variable.
        var: String,
        /// Optional positional variable (`at $p`).
        pos_var: Option<String>,
        /// The sequence iterated over.
        seq: Box<Expr>,
        /// The loop body.
        body: Box<Expr>,
    },
    /// `let $v := e return body`.
    Let {
        /// The bound variable.
        var: String,
        /// The bound value.
        value: Box<Expr>,
        /// The in-scope body.
        body: Box<Expr>,
    },
    /// Quantified expression `some/every $v in seq satisfies cond`.
    Quantified {
        /// `true` for `every`, `false` for `some`.
        every: bool,
        /// The bound variable.
        var: String,
        /// The sequence quantified over.
        seq: Box<Expr>,
        /// The condition.
        cond: Box<Expr>,
    },
    /// `typeswitch (op) case … default …`.
    Typeswitch {
        /// The operand.
        operand: Box<Expr>,
        /// The case branches, tried in order; the last one must be the
        /// `default` branch (with `seq_type == None`).
        cases: Vec<TypeswitchCase>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Path step `input/step` — for every item of `input` (bound as context
    /// item), evaluate `step`; results are combined and document-ordered.
    Path {
        /// The input expression.
        input: Box<Expr>,
        /// The step expression, evaluated with the context item bound.
        step: Box<Expr>,
    },
    /// Leading-slash path: evaluate `step` with the context item set to the
    /// root of the current context node's tree.
    RootPath {
        /// The step following `/` (or `None` for a bare `/`).
        step: Option<Box<Expr>>,
    },
    /// An axis step `axis::test[pred…]`, evaluated against the context item.
    AxisStep {
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
        /// Predicates applied to the step result.
        predicates: Vec<Expr>,
    },
    /// A filter expression `primary[pred…]`.
    Filter {
        /// The filtered expression.
        input: Box<Expr>,
        /// Predicates applied in order.
        predicates: Vec<Expr>,
    },
    /// A (built-in or user-defined) function call.
    FunctionCall {
        /// Function name as written (prefixes preserved).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Direct element constructor `<name attr="…">…</name>`.
    DirectElement {
        /// Element name.
        name: String,
        /// Attributes: name and content parts (text / enclosed exprs).
        attributes: Vec<(String, Vec<ConstructorContent>)>,
        /// Element content.
        content: Vec<ConstructorContent>,
    },
    /// Computed element constructor `element {name-expr} { content }` or
    /// `element name { content }`.
    ComputedElement {
        /// Element name (static) — the common case in the paper's queries.
        name: String,
        /// Content expression.
        content: Box<Expr>,
    },
    /// Computed attribute constructor `attribute name { content }`.
    ComputedAttribute {
        /// Attribute name.
        name: String,
        /// Content expression.
        content: Box<Expr>,
    },
    /// Computed text node constructor `text { content }`.
    ComputedText {
        /// Content expression.
        content: Box<Expr>,
    },
    /// The inflationary fixed point form of the paper:
    /// `with $var seeded by seed recurse body`.
    Fixpoint {
        /// The recursion variable.
        var: String,
        /// The seed expression.
        seed: Box<Expr>,
        /// The recursion body (payload), with `var` free.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: is this expression the IFP form?
    pub fn is_fixpoint(&self) -> bool {
        matches!(self, Expr::Fixpoint { .. })
    }

    /// The free variables of the expression (the `fv(e)` of the paper).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut HashSet<String>) {
        match self {
            Expr::Literal(_) | Expr::EmptySequence | Expr::ContextItem => {}
            Expr::VarRef(v) => {
                out.insert(v.clone());
            }
            Expr::Sequence(items) => {
                for e in items {
                    e.collect_free_vars(out);
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.collect_free_vars(out);
                then_branch.collect_free_vars(out);
                else_branch.collect_free_vars(out);
            }
            Expr::For {
                var,
                pos_var,
                seq,
                body,
            } => {
                seq.collect_free_vars(out);
                let mut inner = HashSet::new();
                body.collect_free_vars(&mut inner);
                inner.remove(var);
                if let Some(p) = pos_var {
                    inner.remove(p);
                }
                out.extend(inner);
            }
            Expr::Let { var, value, body } => {
                value.collect_free_vars(out);
                let mut inner = HashSet::new();
                body.collect_free_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
            Expr::Quantified { var, seq, cond, .. } => {
                seq.collect_free_vars(out);
                let mut inner = HashSet::new();
                cond.collect_free_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
            Expr::Typeswitch { operand, cases } => {
                operand.collect_free_vars(out);
                for case in cases {
                    let mut inner = HashSet::new();
                    case.body.collect_free_vars(&mut inner);
                    if let Some(v) = &case.var {
                        inner.remove(v);
                    }
                    out.extend(inner);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_free_vars(out);
                rhs.collect_free_vars(out);
            }
            Expr::Unary { expr, .. } => expr.collect_free_vars(out),
            Expr::Path { input, step } => {
                input.collect_free_vars(out);
                step.collect_free_vars(out);
            }
            Expr::RootPath { step } => {
                if let Some(s) = step {
                    s.collect_free_vars(out);
                }
            }
            Expr::AxisStep { predicates, .. } => {
                for p in predicates {
                    p.collect_free_vars(out);
                }
            }
            Expr::Filter { input, predicates } => {
                input.collect_free_vars(out);
                for p in predicates {
                    p.collect_free_vars(out);
                }
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.collect_free_vars(out);
                }
            }
            Expr::DirectElement {
                attributes,
                content,
                ..
            } => {
                for (_, parts) in attributes {
                    for part in parts {
                        if let ConstructorContent::Expr(e) = part {
                            e.collect_free_vars(out);
                        }
                    }
                }
                for part in content {
                    if let ConstructorContent::Expr(e) = part {
                        e.collect_free_vars(out);
                    }
                }
            }
            Expr::ComputedElement { content, .. }
            | Expr::ComputedAttribute { content, .. }
            | Expr::ComputedText { content } => content.collect_free_vars(out),
            Expr::Fixpoint { var, seed, body } => {
                seed.collect_free_vars(out);
                let mut inner = HashSet::new();
                body.collect_free_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
        }
    }

    /// `true` if `var` occurs free in this expression.
    pub fn has_free_var(&self, var: &str) -> bool {
        self.free_vars().contains(var)
    }

    /// Replace every *free* occurrence of variable `from` by a reference to
    /// variable `to` — the `e[$y/$x]` substitution used by the paper's
    /// "distributivity hint" rewrite.
    pub fn rename_free_var(&self, from: &str, to: &str) -> Expr {
        self.substitute_var(from, &Expr::VarRef(to.to_string()))
    }

    /// Replace every free occurrence of variable `var` by `replacement`
    /// (capture is avoided only in the sense that bound occurrences of `var`
    /// shadow the substitution, which is all the IFP machinery needs).
    pub fn substitute_var(&self, var: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::VarRef(v) if v == var => replacement.clone(),
            Expr::Literal(_) | Expr::EmptySequence | Expr::ContextItem | Expr::VarRef(_) => {
                self.clone()
            }
            Expr::Sequence(items) => Expr::Sequence(
                items
                    .iter()
                    .map(|e| e.substitute_var(var, replacement))
                    .collect(),
            ),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Expr::If {
                cond: Box::new(cond.substitute_var(var, replacement)),
                then_branch: Box::new(then_branch.substitute_var(var, replacement)),
                else_branch: Box::new(else_branch.substitute_var(var, replacement)),
            },
            Expr::For {
                var: v,
                pos_var,
                seq,
                body,
            } => {
                let new_seq = Box::new(seq.substitute_var(var, replacement));
                let shadowed = v == var || pos_var.as_deref() == Some(var);
                Expr::For {
                    var: v.clone(),
                    pos_var: pos_var.clone(),
                    seq: new_seq,
                    body: if shadowed {
                        body.clone()
                    } else {
                        Box::new(body.substitute_var(var, replacement))
                    },
                }
            }
            Expr::Let {
                var: v,
                value,
                body,
            } => {
                let new_value = Box::new(value.substitute_var(var, replacement));
                Expr::Let {
                    var: v.clone(),
                    value: new_value,
                    body: if v == var {
                        body.clone()
                    } else {
                        Box::new(body.substitute_var(var, replacement))
                    },
                }
            }
            Expr::Quantified {
                every,
                var: v,
                seq,
                cond,
            } => Expr::Quantified {
                every: *every,
                var: v.clone(),
                seq: Box::new(seq.substitute_var(var, replacement)),
                cond: if v == var {
                    cond.clone()
                } else {
                    Box::new(cond.substitute_var(var, replacement))
                },
            },
            Expr::Typeswitch { operand, cases } => Expr::Typeswitch {
                operand: Box::new(operand.substitute_var(var, replacement)),
                cases: cases
                    .iter()
                    .map(|c| TypeswitchCase {
                        var: c.var.clone(),
                        seq_type: c.seq_type.clone(),
                        body: if c.var.as_deref() == Some(var) {
                            c.body.clone()
                        } else {
                            c.body.substitute_var(var, replacement)
                        },
                    })
                    .collect(),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute_var(var, replacement)),
                rhs: Box::new(rhs.substitute_var(var, replacement)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.substitute_var(var, replacement)),
            },
            Expr::Path { input, step } => Expr::Path {
                input: Box::new(input.substitute_var(var, replacement)),
                step: Box::new(step.substitute_var(var, replacement)),
            },
            Expr::RootPath { step } => Expr::RootPath {
                step: step
                    .as_ref()
                    .map(|s| Box::new(s.substitute_var(var, replacement))),
            },
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => Expr::AxisStep {
                axis: *axis,
                test: test.clone(),
                predicates: predicates
                    .iter()
                    .map(|p| p.substitute_var(var, replacement))
                    .collect(),
            },
            Expr::Filter { input, predicates } => Expr::Filter {
                input: Box::new(input.substitute_var(var, replacement)),
                predicates: predicates
                    .iter()
                    .map(|p| p.substitute_var(var, replacement))
                    .collect(),
            },
            Expr::FunctionCall { name, args } => Expr::FunctionCall {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| a.substitute_var(var, replacement))
                    .collect(),
            },
            Expr::DirectElement {
                name,
                attributes,
                content,
            } => Expr::DirectElement {
                name: name.clone(),
                attributes: attributes
                    .iter()
                    .map(|(n, parts)| {
                        (
                            n.clone(),
                            parts
                                .iter()
                                .map(|p| match p {
                                    ConstructorContent::Text(t) => {
                                        ConstructorContent::Text(t.clone())
                                    }
                                    ConstructorContent::Expr(e) => {
                                        ConstructorContent::Expr(e.substitute_var(var, replacement))
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect(),
                content: content
                    .iter()
                    .map(|p| match p {
                        ConstructorContent::Text(t) => ConstructorContent::Text(t.clone()),
                        ConstructorContent::Expr(e) => {
                            ConstructorContent::Expr(e.substitute_var(var, replacement))
                        }
                    })
                    .collect(),
            },
            Expr::ComputedElement { name, content } => Expr::ComputedElement {
                name: name.clone(),
                content: Box::new(content.substitute_var(var, replacement)),
            },
            Expr::ComputedAttribute { name, content } => Expr::ComputedAttribute {
                name: name.clone(),
                content: Box::new(content.substitute_var(var, replacement)),
            },
            Expr::ComputedText { content } => Expr::ComputedText {
                content: Box::new(content.substitute_var(var, replacement)),
            },
            Expr::Fixpoint { var: v, seed, body } => Expr::Fixpoint {
                var: v.clone(),
                seed: Box::new(seed.substitute_var(var, replacement)),
                body: if v == var {
                    body.clone()
                } else {
                    Box::new(body.substitute_var(var, replacement))
                },
            },
        }
    }

    /// `true` if the expression (or any subexpression) constructs nodes —
    /// the condition under which an IFP may fail to terminate and under
    /// which distributivity is lost (Section 3.2 of the paper).
    pub fn contains_node_constructor(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::DirectElement { .. }
                    | Expr::ComputedElement { .. }
                    | Expr::ComputedAttribute { .. }
                    | Expr::ComputedText { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Call `visit` on this expression and every subexpression (pre-order).
    pub fn walk(&self, visit: &mut impl FnMut(&Expr)) {
        visit(self);
        match self {
            Expr::Literal(_) | Expr::EmptySequence | Expr::VarRef(_) | Expr::ContextItem => {}
            Expr::Sequence(items) => items.iter().for_each(|e| e.walk(visit)),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.walk(visit);
                then_branch.walk(visit);
                else_branch.walk(visit);
            }
            Expr::For { seq, body, .. } => {
                seq.walk(visit);
                body.walk(visit);
            }
            Expr::Let { value, body, .. } => {
                value.walk(visit);
                body.walk(visit);
            }
            Expr::Quantified { seq, cond, .. } => {
                seq.walk(visit);
                cond.walk(visit);
            }
            Expr::Typeswitch { operand, cases } => {
                operand.walk(visit);
                cases.iter().for_each(|c| c.body.walk(visit));
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Unary { expr, .. } => expr.walk(visit),
            Expr::Path { input, step } => {
                input.walk(visit);
                step.walk(visit);
            }
            Expr::RootPath { step } => {
                if let Some(s) = step {
                    s.walk(visit);
                }
            }
            Expr::AxisStep { predicates, .. } => predicates.iter().for_each(|p| p.walk(visit)),
            Expr::Filter { input, predicates } => {
                input.walk(visit);
                predicates.iter().for_each(|p| p.walk(visit));
            }
            Expr::FunctionCall { args, .. } => args.iter().for_each(|a| a.walk(visit)),
            Expr::DirectElement {
                attributes,
                content,
                ..
            } => {
                for (_, parts) in attributes {
                    for p in parts {
                        if let ConstructorContent::Expr(e) = p {
                            e.walk(visit);
                        }
                    }
                }
                for p in content {
                    if let ConstructorContent::Expr(e) = p {
                        e.walk(visit);
                    }
                }
            }
            Expr::ComputedElement { content, .. }
            | Expr::ComputedAttribute { content, .. }
            | Expr::ComputedText { content } => content.walk(visit),
            Expr::Fixpoint { seed, body, .. } => {
                seed.walk(visit);
                body.walk(visit);
            }
        }
    }

    /// Count the nodes of the expression tree (used in tests and reports).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::VarRef(name.to_string())
    }

    #[test]
    fn free_vars_respect_binders() {
        // for $y in $x return ($y, $z)
        let expr = Expr::For {
            var: "y".into(),
            pos_var: None,
            seq: Box::new(var("x")),
            body: Box::new(Expr::Sequence(vec![var("y"), var("z")])),
        };
        let fv = expr.free_vars();
        assert!(fv.contains("x"));
        assert!(fv.contains("z"));
        assert!(!fv.contains("y"));
    }

    #[test]
    fn let_binder_shadows() {
        // let $x := $x return $x — the outer $x is only free in the value.
        let expr = Expr::Let {
            var: "x".into(),
            value: Box::new(var("x")),
            body: Box::new(var("x")),
        };
        assert_eq!(expr.free_vars().len(), 1);
    }

    #[test]
    fn fixpoint_binds_its_variable() {
        let expr = Expr::Fixpoint {
            var: "x".into(),
            seed: Box::new(var("seed")),
            body: Box::new(Expr::Path {
                input: Box::new(var("x")),
                step: Box::new(Expr::AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::AnyElement,
                    predicates: vec![],
                }),
            }),
        };
        let fv = expr.free_vars();
        assert!(fv.contains("seed"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn substitution_avoids_bound_occurrences() {
        // for $x in $x return $x : substituting $x only affects the range.
        let expr = Expr::For {
            var: "x".into(),
            pos_var: None,
            seq: Box::new(var("x")),
            body: Box::new(var("x")),
        };
        let replaced = expr.substitute_var("x", &Expr::EmptySequence);
        match replaced {
            Expr::For { seq, body, .. } => {
                assert_eq!(*seq, Expr::EmptySequence);
                assert_eq!(*body, var("x"));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn rename_free_var_builds_hint_shape() {
        let body = Expr::Path {
            input: Box::new(var("x")),
            step: Box::new(Expr::AxisStep {
                axis: Axis::Child,
                test: NodeTest::Name("a".into()),
                predicates: vec![],
            }),
        };
        let renamed = body.rename_free_var("x", "y");
        assert!(renamed.has_free_var("y"));
        assert!(!renamed.has_free_var("x"));
    }

    #[test]
    fn detects_node_constructors() {
        let ctor = Expr::ComputedText {
            content: Box::new(Expr::Literal(Literal::String("c".into()))),
        };
        assert!(ctor.contains_node_constructor());
        let plain = Expr::Sequence(vec![var("x"), Expr::Literal(Literal::Integer(1))]);
        assert!(!plain.contains_node_constructor());
    }

    #[test]
    fn size_counts_subexpressions() {
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Literal(Literal::Integer(1))),
            rhs: Box::new(Expr::Literal(Literal::Integer(2))),
        };
        assert_eq!(expr.size(), 3);
    }
}
