//! Pretty printer: turn an AST back into XQuery surface syntax.
//!
//! The output is primarily used by the source-level Naïve→Delta rewriter in
//! `xqy-ifp` (to show users the rewritten query) and by tests that check
//! parse → print → parse stability.  The printer always emits enough
//! parentheses to be re-parseable; it does not try to minimise them.

use crate::ast::{ConstructorContent, Expr, FunctionDecl, Literal, QueryModule, UnaryOp};

/// Render a full query module.
pub fn print_module(module: &QueryModule) -> String {
    let mut out = String::new();
    for f in &module.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    for (name, value) in &module.variables {
        out.push_str(&format!(
            "declare variable ${name} := {};\n",
            print_expr(value)
        ));
    }
    out.push_str(&print_expr(&module.body));
    out
}

/// Render a function declaration.
pub fn print_function(f: &FunctionDecl) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .zip(f.param_types.iter())
        .map(|(p, t)| match t {
            Some(t) => format!("${p} as {t}"),
            None => format!("${p}"),
        })
        .collect();
    let ret = match &f.return_type {
        Some(t) => format!(" as {t}"),
        None => String::new(),
    };
    format!(
        "declare function {}({}){} {{ {} }};",
        f.name,
        params.join(", "),
        ret,
        print_expr(&f.body)
    )
}

/// Render a single expression.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(Literal::Integer(i)) => i.to_string(),
        Expr::Literal(Literal::Double(d)) => {
            if d.fract() == 0.0 && d.is_finite() {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Expr::Literal(Literal::String(s)) => format!("\"{}\"", s.replace('"', "\"\"")),
        Expr::EmptySequence => "()".to_string(),
        Expr::VarRef(v) => format!("${v}"),
        Expr::ContextItem => ".".to_string(),
        Expr::Sequence(items) => {
            let parts: Vec<String> = items.iter().map(print_expr).collect();
            format!("({})", parts.join(", "))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => format!(
            "if ({}) then {} else {}",
            print_expr(cond),
            print_expr(then_branch),
            print_expr(else_branch)
        ),
        Expr::For {
            var,
            pos_var,
            seq,
            body,
        } => {
            let at = match pos_var {
                Some(p) => format!(" at ${p}"),
                None => String::new(),
            };
            format!(
                "for ${var}{at} in {} return {}",
                print_expr(seq),
                print_expr(body)
            )
        }
        Expr::Let { var, value, body } => format!(
            "let ${var} := {} return {}",
            print_expr(value),
            print_expr(body)
        ),
        Expr::Quantified {
            every,
            var,
            seq,
            cond,
        } => format!(
            "{} ${var} in {} satisfies {}",
            if *every { "every" } else { "some" },
            print_expr(seq),
            print_expr(cond)
        ),
        Expr::Typeswitch { operand, cases } => {
            let mut out = format!("typeswitch ({})", print_expr(operand));
            for case in cases {
                match &case.seq_type {
                    Some(t) => {
                        let var = case
                            .var
                            .as_ref()
                            .map(|v| format!("${v} as "))
                            .unwrap_or_default();
                        out.push_str(&format!(" case {var}{t} return {}", print_expr(&case.body)));
                    }
                    None => {
                        let var = case
                            .var
                            .as_ref()
                            .map(|v| format!("${v} "))
                            .unwrap_or_default();
                        out.push_str(&format!(" default {var}return {}", print_expr(&case.body)));
                    }
                }
            }
            out
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnaryOp::Minus => "-",
                UnaryOp::Plus => "+",
            };
            format!("{sym}{}", print_expr(expr))
        }
        Expr::Path { input, step } => format!("{}/{}", print_expr(input), print_expr(step)),
        Expr::RootPath { step } => match step {
            Some(s) => format!("/{}", print_expr(s)),
            None => "/".to_string(),
        },
        Expr::AxisStep {
            axis,
            test,
            predicates,
        } => {
            let mut out = format!("{}::{}", axis.name(), test);
            for p in predicates {
                out.push_str(&format!("[{}]", print_expr(p)));
            }
            out
        }
        Expr::Filter { input, predicates } => {
            let mut out = print_expr(input);
            for p in predicates {
                out.push_str(&format!("[{}]", print_expr(p)));
            }
            out
        }
        Expr::FunctionCall { name, args } => {
            let parts: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", parts.join(", "))
        }
        Expr::DirectElement {
            name,
            attributes,
            content,
        } => {
            let mut out = format!("<{name}");
            for (attr, parts) in attributes {
                out.push_str(&format!(" {attr}=\""));
                for part in parts {
                    match part {
                        ConstructorContent::Text(t) => out.push_str(t),
                        ConstructorContent::Expr(e) => {
                            out.push_str(&format!("{{ {} }}", print_expr(e)))
                        }
                    }
                }
                out.push('"');
            }
            if content.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for part in content {
                    match part {
                        ConstructorContent::Text(t) => out.push_str(t),
                        ConstructorContent::Expr(e) => {
                            out.push_str(&format!("{{ {} }}", print_expr(e)))
                        }
                    }
                }
                out.push_str(&format!("</{name}>"));
            }
            out
        }
        Expr::ComputedElement { name, content } => {
            format!("element {name} {{ {} }}", print_expr(content))
        }
        Expr::ComputedAttribute { name, content } => {
            format!("attribute {name} {{ {} }}", print_expr(content))
        }
        Expr::ComputedText { content } => format!("text {{ {} }}", print_expr(content)),
        Expr::Fixpoint { var, seed, body } => format!(
            "with ${var} seeded by {} recurse {}",
            print_expr(seed),
            print_expr(body)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};

    /// Parsing the printed form must give back the same AST (print/parse
    /// stability — a weaker but more robust property than text equality).
    fn roundtrip(src: &str) {
        let ast = parse_expr(src).unwrap();
        let printed = print_expr(&ast);
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(ast, reparsed, "printed form: {printed}");
    }

    #[test]
    fn roundtrips_core_expressions() {
        roundtrip("1 + 2 * 3");
        roundtrip("(1, 'a', 2.5)");
        roundtrip("for $x in $seq return $x/child::a");
        roundtrip("let $x := 1 return if ($x = 1) then 'y' else 'n'");
        roundtrip("some $y in $x satisfies $y eq 1");
        roundtrip("$a union $b except $c intersect $d");
        roundtrip("count($x) >= 1 and empty($y)");
        roundtrip("with $x seeded by doc(\"c.xml\")/course recurse $x/id(./pre)");
        roundtrip("typeswitch ($x) case element(a) return 1 default return 2");
        roundtrip("element out { $x } , text { \"c\" }");
        roundtrip("$x[1][@id = 'a']");
        roundtrip("-$x + 1");
    }

    #[test]
    fn roundtrips_direct_constructors() {
        roundtrip("<person id=\"{ $p/@id }\">{ $p/name }<x/></person>");
        roundtrip("<a/>");
    }

    #[test]
    fn prints_modules_with_functions() {
        let module = parse_query(
            "declare function f($x as node()*) as node()* { $x/* };\n\
             declare variable $d := doc('x.xml');\nf($d)",
        )
        .unwrap();
        let printed = print_module(&module);
        assert!(printed.contains("declare function f"));
        assert!(printed.contains("declare variable $d"));
        let reparsed = parse_query(&printed).unwrap();
        assert_eq!(module, reparsed);
    }
}
