//! Recursive-descent parser for the XQuery subset.
//!
//! The parser follows the XQuery 1.0 grammar shape (expression levels from
//! `ExprSingle` down to `PathExpr`) restricted to the LiXQuery-style subset
//! described in the crate documentation and extended with the paper's
//! `with $x seeded by e recurse e` form.
//!
//! Direct element constructors are parsed in "raw" character mode by
//! temporarily rewinding the lexer — see [`Lexer`] for the mechanics.

use xqy_xdm::{Axis, NodeTest};

use crate::ast::{
    BinaryOp, ConstructorContent, Expr, FunctionDecl, Literal, Occurrence, QueryModule,
    SequenceType, TypeswitchCase, UnaryOp,
};
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};
use crate::Result;

/// Parse a complete query module (prolog + body expression).
pub fn parse_query(source: &str) -> Result<QueryModule> {
    crate::note_parse();
    let mut parser = Parser::new(source);
    let module = parser.parse_module()?;
    parser.expect_eof()?;
    Ok(module)
}

/// Parse a single expression (no prolog allowed).
pub fn parse_expr(source: &str) -> Result<Expr> {
    crate::note_parse();
    let mut parser = Parser::new(source);
    let expr = parser.parse_expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Token>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(source),
            peeked: None,
        }
    }

    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn peek(&mut self) -> Result<&Token> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_token()?);
        }
        Ok(self.peeked.as_ref().expect("just filled"))
    }

    fn next(&mut self) -> Result<Token> {
        match self.peeked.take() {
            Some(tok) => Ok(tok),
            None => self.lexer.next_token(),
        }
    }

    fn at(&mut self, kind: &TokenKind) -> Result<bool> {
        Ok(&self.peek()?.kind == kind)
    }

    fn at_keyword(&mut self, kw: &str) -> Result<bool> {
        Ok(self.peek()?.kind.is_keyword(kw))
    }

    fn eat(&mut self, kind: &TokenKind) -> Result<bool> {
        if self.at(kind)? {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<bool> {
        if self.at_keyword(kw)? {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        let tok = self.next()?;
        if &tok.kind == kind {
            Ok(tok)
        } else {
            Err(ParseError::new(
                tok.offset,
                format!("expected {kind}, found {}", tok.kind),
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let tok = self.next()?;
        if tok.kind.is_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                tok.offset,
                format!("expected '{kw}', found {}", tok.kind),
            ))
        }
    }

    fn expect_variable(&mut self) -> Result<String> {
        let tok = self.next()?;
        match tok.kind {
            TokenKind::Variable(name) => Ok(name),
            other => Err(ParseError::new(
                tok.offset,
                format!("expected a variable, found {other}"),
            )),
        }
    }

    fn expect_name(&mut self) -> Result<String> {
        let tok = self.next()?;
        match tok.kind {
            TokenKind::Name(name) => Ok(name),
            other => Err(ParseError::new(
                tok.offset,
                format!("expected a name, found {other}"),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        let tok = self.peek()?;
        if tok.kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                tok.offset,
                format!("unexpected {} after end of expression", tok.kind),
            ))
        }
    }

    // ------------------------------------------------------------------
    // Prolog
    // ------------------------------------------------------------------

    fn parse_module(&mut self) -> Result<QueryModule> {
        let mut functions = Vec::new();
        let mut variables = Vec::new();

        loop {
            if self.at_keyword("xquery")? {
                // xquery version "1.0";
                self.next()?;
                self.expect_keyword("version")?;
                let tok = self.next()?;
                if !matches!(tok.kind, TokenKind::String(_)) {
                    return Err(ParseError::new(tok.offset, "expected version string"));
                }
                self.expect(&TokenKind::Semicolon)?;
                continue;
            }
            if !self.at_keyword("declare")? {
                break;
            }
            self.next()?; // declare
            if self.eat_keyword("function")? {
                functions.push(self.parse_function_decl()?);
            } else if self.eat_keyword("variable")? {
                let name = self.expect_variable()?;
                if self.eat_keyword("as")? {
                    self.parse_sequence_type()?;
                }
                self.expect(&TokenKind::Assign)?;
                let value = self.parse_expr_single()?;
                self.expect(&TokenKind::Semicolon)?;
                variables.push((name, value));
            } else if self.eat_keyword("namespace")? {
                let _prefix = self.expect_name()?;
                self.expect(&TokenKind::Eq)?;
                let tok = self.next()?;
                if !matches!(tok.kind, TokenKind::String(_)) {
                    return Err(ParseError::new(tok.offset, "expected namespace URI string"));
                }
                self.expect(&TokenKind::Semicolon)?;
            } else {
                let tok = self.peek()?;
                return Err(ParseError::new(
                    tok.offset,
                    format!("unsupported declaration starting with {}", tok.kind),
                ));
            }
        }

        let body = self.parse_expr()?;
        Ok(QueryModule {
            functions,
            variables,
            body,
        })
    }

    fn parse_function_decl(&mut self) -> Result<FunctionDecl> {
        let name = self.expect_name()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        let mut param_types = Vec::new();
        if !self.at(&TokenKind::RParen)? {
            loop {
                let param = self.expect_variable()?;
                let ty = if self.eat_keyword("as")? {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                params.push(param);
                param_types.push(ty);
                if !self.eat(&TokenKind::Comma)? {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let return_type = if self.eat_keyword("as")? {
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace)?;
        let body = self.parse_expr()?;
        self.expect(&TokenKind::RBrace)?;
        // The trailing ';' after a function declaration is mandatory in
        // XQuery; accept a missing one for convenience in tests.
        let _ = self.eat(&TokenKind::Semicolon)?;
        Ok(FunctionDecl {
            name,
            params,
            param_types,
            return_type,
            body,
        })
    }

    fn parse_sequence_type(&mut self) -> Result<SequenceType> {
        let name = self.expect_name()?;
        let mut item_type = name;
        if self.at(&TokenKind::LParen)? {
            self.next()?;
            if !self.at(&TokenKind::RParen)? {
                let inner = self.expect_name()?;
                item_type = format!("{item_type}({inner})");
            } else {
                item_type = format!("{item_type}()");
            }
            self.expect(&TokenKind::RParen)?;
        }
        let occurrence = if self.eat(&TokenKind::Question)? {
            Occurrence::Optional
        } else if self.eat(&TokenKind::Star)? {
            Occurrence::ZeroOrMore
        } else if self.eat(&TokenKind::Plus)? {
            Occurrence::OneOrMore
        } else {
            Occurrence::One
        };
        Ok(SequenceType {
            item_type,
            occurrence,
        })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        let first = self.parse_expr_single()?;
        if !self.at(&TokenKind::Comma)? {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&TokenKind::Comma)? {
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn parse_expr_single(&mut self) -> Result<Expr> {
        if self.at_keyword("for")? || self.at_keyword("let")? {
            return self.parse_flwor();
        }
        if self.at_keyword("some")? || self.at_keyword("every")? {
            return self.parse_quantified();
        }
        if self.at_keyword("typeswitch")? {
            return self.parse_typeswitch();
        }
        if self.at_keyword("if")? {
            return self.parse_if();
        }
        if self.at_keyword("with")? {
            return self.parse_fixpoint();
        }
        self.parse_or_expr()
    }

    /// `with $x seeded by e_seed recurse e_rec` — the IFP form (Definition 2.1).
    fn parse_fixpoint(&mut self) -> Result<Expr> {
        self.expect_keyword("with")?;
        let var = self.expect_variable()?;
        self.expect_keyword("seeded")?;
        self.expect_keyword("by")?;
        let seed = self.parse_expr_single()?;
        self.expect_keyword("recurse")?;
        let body = self.parse_expr_single()?;
        Ok(Expr::Fixpoint {
            var,
            seed: Box::new(seed),
            body: Box::new(body),
        })
    }

    fn parse_flwor(&mut self) -> Result<Expr> {
        // Collect the clause spine first, then fold it into nested
        // For/Let/If expressions from the inside out.
        enum Clause {
            For {
                var: String,
                pos_var: Option<String>,
                seq: Expr,
            },
            Let {
                var: String,
                value: Expr,
            },
            Where(Expr),
        }

        let mut clauses = Vec::new();
        loop {
            if self.at_keyword("for")? {
                self.next()?;
                loop {
                    let var = self.expect_variable()?;
                    if self.eat_keyword("as")? {
                        self.parse_sequence_type()?;
                    }
                    let pos_var = if self.eat_keyword("at")? {
                        Some(self.expect_variable()?)
                    } else {
                        None
                    };
                    self.expect_keyword("in")?;
                    let seq = self.parse_expr_single()?;
                    clauses.push(Clause::For { var, pos_var, seq });
                    if !self.eat(&TokenKind::Comma)? {
                        break;
                    }
                }
            } else if self.at_keyword("let")? {
                self.next()?;
                loop {
                    let var = self.expect_variable()?;
                    if self.eat_keyword("as")? {
                        self.parse_sequence_type()?;
                    }
                    self.expect(&TokenKind::Assign)?;
                    let value = self.parse_expr_single()?;
                    clauses.push(Clause::Let { var, value });
                    if !self.eat(&TokenKind::Comma)? {
                        break;
                    }
                }
            } else if self.at_keyword("where")? {
                self.next()?;
                let cond = self.parse_expr_single()?;
                clauses.push(Clause::Where(cond));
            } else if self.at_keyword("order")? {
                let tok = self.peek()?;
                return Err(ParseError::new(
                    tok.offset,
                    "'order by' is not supported by this XQuery subset",
                ));
            } else {
                break;
            }
        }
        self.expect_keyword("return")?;
        let mut body = self.parse_expr_single()?;

        for clause in clauses.into_iter().rev() {
            body = match clause {
                Clause::For { var, pos_var, seq } => Expr::For {
                    var,
                    pos_var,
                    seq: Box::new(seq),
                    body: Box::new(body),
                },
                Clause::Let { var, value } => Expr::Let {
                    var,
                    value: Box::new(value),
                    body: Box::new(body),
                },
                Clause::Where(cond) => Expr::If {
                    cond: Box::new(cond),
                    then_branch: Box::new(body),
                    else_branch: Box::new(Expr::EmptySequence),
                },
            };
        }
        Ok(body)
    }

    fn parse_quantified(&mut self) -> Result<Expr> {
        let every = self.at_keyword("every")?;
        self.next()?;
        // Multiple binders desugar into nested quantifiers.
        let mut binders = Vec::new();
        loop {
            let var = self.expect_variable()?;
            if self.eat_keyword("as")? {
                self.parse_sequence_type()?;
            }
            self.expect_keyword("in")?;
            let seq = self.parse_expr_single()?;
            binders.push((var, seq));
            if !self.eat(&TokenKind::Comma)? {
                break;
            }
        }
        self.expect_keyword("satisfies")?;
        let mut cond = self.parse_expr_single()?;
        for (var, seq) in binders.into_iter().rev() {
            cond = Expr::Quantified {
                every,
                var,
                seq: Box::new(seq),
                cond: Box::new(cond),
            };
        }
        Ok(cond)
    }

    fn parse_typeswitch(&mut self) -> Result<Expr> {
        self.expect_keyword("typeswitch")?;
        self.expect(&TokenKind::LParen)?;
        let operand = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let mut cases = Vec::new();
        while self.at_keyword("case")? {
            self.next()?;
            let mut var = None;
            if matches!(self.peek()?.kind, TokenKind::Variable(_)) {
                var = Some(self.expect_variable()?);
                self.expect_keyword("as")?;
            }
            let seq_type = self.parse_sequence_type()?;
            self.expect_keyword("return")?;
            let body = self.parse_expr_single()?;
            cases.push(TypeswitchCase {
                var,
                seq_type: Some(seq_type),
                body,
            });
        }
        self.expect_keyword("default")?;
        let mut default_var = None;
        if matches!(self.peek()?.kind, TokenKind::Variable(_)) {
            default_var = Some(self.expect_variable()?);
        }
        self.expect_keyword("return")?;
        let default_body = self.parse_expr_single()?;
        cases.push(TypeswitchCase {
            var: default_var,
            seq_type: None,
            body: default_body,
        });
        Ok(Expr::Typeswitch {
            operand: Box::new(operand),
            cases,
        })
    }

    fn parse_if(&mut self) -> Result<Expr> {
        self.expect_keyword("if")?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect_keyword("then")?;
        let then_branch = self.parse_expr_single()?;
        self.expect_keyword("else")?;
        let else_branch = self.parse_expr_single()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    fn parse_or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and_expr()?;
        while self.at_keyword("or")? {
            self.next()?;
            let rhs = self.parse_and_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_comparison_expr()?;
        while self.at_keyword("and")? {
            self.next()?;
            let rhs = self.parse_comparison_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn comparison_op(&mut self) -> Result<Option<BinaryOp>> {
        let op = match &self.peek()?.kind {
            TokenKind::Eq => Some(BinaryOp::GeneralEq),
            TokenKind::Ne => Some(BinaryOp::GeneralNe),
            TokenKind::Lt => Some(BinaryOp::GeneralLt),
            TokenKind::Le => Some(BinaryOp::GeneralLe),
            TokenKind::Gt => Some(BinaryOp::GeneralGt),
            TokenKind::Ge => Some(BinaryOp::GeneralGe),
            TokenKind::Precedes => Some(BinaryOp::Precedes),
            TokenKind::Follows => Some(BinaryOp::Follows),
            TokenKind::Name(n) => match n.as_str() {
                "eq" => Some(BinaryOp::ValueEq),
                "ne" => Some(BinaryOp::ValueNe),
                "lt" => Some(BinaryOp::ValueLt),
                "le" => Some(BinaryOp::ValueLe),
                "gt" => Some(BinaryOp::ValueGt),
                "ge" => Some(BinaryOp::ValueGe),
                "is" => Some(BinaryOp::Is),
                _ => None,
            },
            _ => None,
        };
        Ok(op)
    }

    fn parse_comparison_expr(&mut self) -> Result<Expr> {
        let lhs = self.parse_range_expr()?;
        if let Some(op) = self.comparison_op()? {
            self.next()?;
            let rhs = self.parse_range_expr()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_range_expr(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive_expr()?;
        if self.at_keyword("to")? {
            self.next()?;
            let rhs = self.parse_additive_expr()?;
            return Ok(Expr::Binary {
                op: BinaryOp::Range,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_additive_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative_expr()?;
        loop {
            let op = if self.at(&TokenKind::Plus)? {
                BinaryOp::Add
            } else if self.at(&TokenKind::Minus)? {
                BinaryOp::Sub
            } else {
                break;
            };
            self.next()?;
            let rhs = self.parse_multiplicative_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_union_expr()?;
        loop {
            let op = if self.at(&TokenKind::Star)? {
                BinaryOp::Mul
            } else if self.at_keyword("div")? {
                BinaryOp::Div
            } else if self.at_keyword("idiv")? {
                BinaryOp::IDiv
            } else if self.at_keyword("mod")? {
                BinaryOp::Mod
            } else {
                break;
            };
            self.next()?;
            let rhs = self.parse_union_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_union_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_intersect_except_expr()?;
        loop {
            if self.at(&TokenKind::Pipe)? || self.at_keyword("union")? {
                self.next()?;
                let rhs = self.parse_intersect_except_expr()?;
                lhs = Expr::Binary {
                    op: BinaryOp::Union,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_intersect_except_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary_expr()?;
        loop {
            let op = if self.at_keyword("intersect")? {
                BinaryOp::Intersect
            } else if self.at_keyword("except")? {
                BinaryOp::Except
            } else {
                break;
            };
            self.next()?;
            let rhs = self.parse_unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary_expr(&mut self) -> Result<Expr> {
        if self.at(&TokenKind::Minus)? {
            self.next()?;
            let expr = self.parse_unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Minus,
                expr: Box::new(expr),
            });
        }
        if self.at(&TokenKind::Plus)? {
            self.next()?;
            let expr = self.parse_unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Plus,
                expr: Box::new(expr),
            });
        }
        self.parse_path_expr()
    }

    // ------------------------------------------------------------------
    // Path expressions
    // ------------------------------------------------------------------

    fn parse_path_expr(&mut self) -> Result<Expr> {
        if self.at(&TokenKind::DoubleSlash)? {
            self.next()?;
            let rest = self.parse_relative_path_from(Expr::RootPath { step: None })?;
            // `//x` ≡ root()/descendant-or-self::node()/x
            return Ok(rest);
        }
        if self.at(&TokenKind::Slash)? {
            self.next()?;
            // A bare `/` selects the root; otherwise a relative path follows.
            if self.starts_step()? {
                let step = self.parse_step_expr()?;
                let first = Expr::RootPath {
                    step: Some(Box::new(step)),
                };
                return self.parse_path_tail(first);
            }
            return Ok(Expr::RootPath { step: None });
        }
        let first = self.parse_step_expr()?;
        self.parse_path_tail(first)
    }

    /// After `//` at the start of a path: build
    /// `RootPath/descendant-or-self::node()/…`.
    fn parse_relative_path_from(&mut self, root: Expr) -> Result<Expr> {
        let dos = Expr::AxisStep {
            axis: Axis::DescendantOrSelf,
            test: NodeTest::AnyNode,
            predicates: vec![],
        };
        let base = Expr::Path {
            input: Box::new(root),
            step: Box::new(dos),
        };
        let step = self.parse_step_expr()?;
        let first = Expr::Path {
            input: Box::new(base),
            step: Box::new(step),
        };
        self.parse_path_tail(first)
    }

    fn parse_path_tail(&mut self, mut lhs: Expr) -> Result<Expr> {
        loop {
            if self.at(&TokenKind::Slash)? {
                self.next()?;
                let step = self.parse_step_expr()?;
                lhs = Expr::Path {
                    input: Box::new(lhs),
                    step: Box::new(step),
                };
            } else if self.at(&TokenKind::DoubleSlash)? {
                self.next()?;
                let dos = Expr::AxisStep {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: vec![],
                };
                lhs = Expr::Path {
                    input: Box::new(lhs),
                    step: Box::new(dos),
                };
                let step = self.parse_step_expr()?;
                lhs = Expr::Path {
                    input: Box::new(lhs),
                    step: Box::new(step),
                };
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    /// Can the upcoming token start a path step?  (Used after a leading `/`.)
    fn starts_step(&mut self) -> Result<bool> {
        Ok(matches!(
            self.peek()?.kind,
            TokenKind::Name(_)
                | TokenKind::Star
                | TokenKind::At
                | TokenKind::Dot
                | TokenKind::DotDot
                | TokenKind::Variable(_)
                | TokenKind::LParen
                | TokenKind::String(_)
                | TokenKind::Integer(_)
                | TokenKind::Double(_)
        ))
    }

    fn parse_step_expr(&mut self) -> Result<Expr> {
        // Axis steps begin with: axis::, @, .., *, or a plain name that is
        // not followed by '(' (function call).  Everything else is a postfix
        // (primary) expression.
        let tok = self.peek()?.clone();
        match &tok.kind {
            TokenKind::At => {
                self.next()?;
                let test = self.parse_node_test(Axis::Attribute)?;
                let predicates = self.parse_predicates()?;
                Ok(Expr::AxisStep {
                    axis: Axis::Attribute,
                    test,
                    predicates,
                })
            }
            TokenKind::DotDot => {
                self.next()?;
                let predicates = self.parse_predicates()?;
                Ok(Expr::AxisStep {
                    axis: Axis::Parent,
                    test: NodeTest::AnyNode,
                    predicates,
                })
            }
            TokenKind::Star => {
                self.next()?;
                let predicates = self.parse_predicates()?;
                Ok(Expr::AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::AnyElement,
                    predicates,
                })
            }
            TokenKind::Name(name) => {
                let name = name.clone();
                self.next()?;
                // Computed constructors are primary expressions that start
                // with a keyword-like name: `element n { … }`,
                // `attribute n { … }`, `text { … }`.
                if (name == "element" || name == "attribute")
                    && matches!(self.peek()?.kind, TokenKind::Name(_))
                {
                    let ctor_name = self.expect_name()?;
                    self.expect(&TokenKind::LBrace)?;
                    let content = if self.at(&TokenKind::RBrace)? {
                        Expr::EmptySequence
                    } else {
                        self.parse_expr()?
                    };
                    self.expect(&TokenKind::RBrace)?;
                    let ctor = if name == "element" {
                        Expr::ComputedElement {
                            name: ctor_name,
                            content: Box::new(content),
                        }
                    } else {
                        Expr::ComputedAttribute {
                            name: ctor_name,
                            content: Box::new(content),
                        }
                    };
                    return self.parse_postfix_tail(ctor);
                }
                if name == "text" && self.at(&TokenKind::LBrace)? {
                    self.next()?;
                    let content = if self.at(&TokenKind::RBrace)? {
                        Expr::EmptySequence
                    } else {
                        self.parse_expr()?
                    };
                    self.expect(&TokenKind::RBrace)?;
                    return self.parse_postfix_tail(Expr::ComputedText {
                        content: Box::new(content),
                    });
                }
                // axis::test ?
                if Axis::from_name(&name).is_some() && self.at(&TokenKind::DoubleColon)? {
                    let axis = Axis::from_name(&name).expect("checked above");
                    self.next()?;
                    let test = self.parse_node_test(axis)?;
                    let predicates = self.parse_predicates()?;
                    return Ok(Expr::AxisStep {
                        axis,
                        test,
                        predicates,
                    });
                }
                // Kind test or function call: name '(' …
                if self.at(&TokenKind::LParen)? {
                    if let Some(test) = self.try_parse_kind_test(&name)? {
                        let predicates = self.parse_predicates()?;
                        return Ok(Expr::AxisStep {
                            axis: Axis::Child,
                            test,
                            predicates,
                        });
                    }
                    let call = self.parse_function_call(name)?;
                    return self.parse_postfix_tail(call);
                }
                // Plain name test on the child axis.
                let predicates = self.parse_predicates()?;
                Ok(Expr::AxisStep {
                    axis: Axis::Child,
                    test: NodeTest::Name(name),
                    predicates,
                })
            }
            _ => {
                let primary = self.parse_primary_expr()?;
                self.parse_postfix_tail(primary)
            }
        }
    }

    fn try_parse_kind_test(&mut self, name: &str) -> Result<Option<NodeTest>> {
        let test = match name {
            "node" => {
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                NodeTest::AnyNode
            }
            "text" => {
                // `text { … }` is a constructor; `text(` is a kind test.
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                NodeTest::Text
            }
            "comment" => {
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                NodeTest::Comment
            }
            "processing-instruction" => {
                self.expect(&TokenKind::LParen)?;
                // Optional target name/string, ignored for matching.
                if !self.at(&TokenKind::RParen)? {
                    self.next()?;
                }
                self.expect(&TokenKind::RParen)?;
                NodeTest::ProcessingInstruction
            }
            "document-node" => {
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                NodeTest::Document
            }
            "element" => {
                self.expect(&TokenKind::LParen)?;
                let inner = if self.at(&TokenKind::RParen)? || self.at(&TokenKind::Star)? {
                    let _ = self.eat(&TokenKind::Star)?;
                    None
                } else {
                    Some(self.expect_name()?)
                };
                self.expect(&TokenKind::RParen)?;
                NodeTest::Element(inner)
            }
            "attribute" => {
                self.expect(&TokenKind::LParen)?;
                let inner = if self.at(&TokenKind::RParen)? || self.at(&TokenKind::Star)? {
                    let _ = self.eat(&TokenKind::Star)?;
                    None
                } else {
                    Some(self.expect_name()?)
                };
                self.expect(&TokenKind::RParen)?;
                NodeTest::Attribute(inner)
            }
            _ => return Ok(None),
        };
        Ok(Some(test))
    }

    fn parse_node_test(&mut self, _axis: Axis) -> Result<NodeTest> {
        if self.eat(&TokenKind::Star)? {
            return Ok(NodeTest::AnyElement);
        }
        let name = self.expect_name()?;
        if self.at(&TokenKind::LParen)? {
            if let Some(test) = self.try_parse_kind_test(&name)? {
                return Ok(test);
            }
        }
        Ok(NodeTest::Name(name))
    }

    fn parse_predicates(&mut self) -> Result<Vec<Expr>> {
        let mut predicates = Vec::new();
        while self.at(&TokenKind::LBracket)? {
            self.next()?;
            let pred = self.parse_expr()?;
            self.expect(&TokenKind::RBracket)?;
            predicates.push(pred);
        }
        Ok(predicates)
    }

    fn parse_postfix_tail(&mut self, primary: Expr) -> Result<Expr> {
        let predicates = self.parse_predicates()?;
        if predicates.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter {
                input: Box::new(primary),
                predicates,
            })
        }
    }

    // ------------------------------------------------------------------
    // Primary expressions
    // ------------------------------------------------------------------

    fn parse_primary_expr(&mut self) -> Result<Expr> {
        let tok = self.peek()?.clone();
        match &tok.kind {
            TokenKind::Integer(i) => {
                let value = *i;
                self.next()?;
                Ok(Expr::Literal(Literal::Integer(value)))
            }
            TokenKind::Double(d) => {
                let value = *d;
                self.next()?;
                Ok(Expr::Literal(Literal::Double(value)))
            }
            TokenKind::String(s) => {
                let value = s.clone();
                self.next()?;
                Ok(Expr::Literal(Literal::String(value)))
            }
            TokenKind::Variable(name) => {
                let name = name.clone();
                self.next()?;
                Ok(Expr::VarRef(name))
            }
            TokenKind::Dot => {
                self.next()?;
                Ok(Expr::ContextItem)
            }
            TokenKind::LParen => {
                self.next()?;
                if self.eat(&TokenKind::RParen)? {
                    return Ok(Expr::EmptySequence);
                }
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Lt => {
                // Direct element constructor if a name character follows '<'.
                let source = self.lexer.source();
                let next_char = source.as_bytes().get(tok.offset + 1).copied();
                let is_ctor = next_char
                    .map(|c| (c as char).is_ascii_alphabetic() || c == b'_')
                    .unwrap_or(false);
                if is_ctor {
                    self.parse_direct_constructor(tok.offset)
                } else {
                    Err(ParseError::new(
                        tok.offset,
                        "unexpected '<' (not a direct constructor)",
                    ))
                }
            }
            TokenKind::Name(name) => {
                let name = name.clone();
                // Computed constructors: element name { e }, attribute name { e },
                // text { e }, document { e }.
                match name.as_str() {
                    "element" | "attribute" => {
                        self.next()?;
                        let ctor_name = self.expect_name()?;
                        self.expect(&TokenKind::LBrace)?;
                        let content = if self.at(&TokenKind::RBrace)? {
                            Expr::EmptySequence
                        } else {
                            self.parse_expr()?
                        };
                        self.expect(&TokenKind::RBrace)?;
                        if name == "element" {
                            Ok(Expr::ComputedElement {
                                name: ctor_name,
                                content: Box::new(content),
                            })
                        } else {
                            Ok(Expr::ComputedAttribute {
                                name: ctor_name,
                                content: Box::new(content),
                            })
                        }
                    }
                    "text" => {
                        self.next()?;
                        self.expect(&TokenKind::LBrace)?;
                        let content = if self.at(&TokenKind::RBrace)? {
                            Expr::EmptySequence
                        } else {
                            self.parse_expr()?
                        };
                        self.expect(&TokenKind::RBrace)?;
                        Ok(Expr::ComputedText {
                            content: Box::new(content),
                        })
                    }
                    _ => {
                        self.next()?;
                        if self.at(&TokenKind::LParen)? {
                            self.parse_function_call(name)
                        } else {
                            Err(ParseError::new(
                                tok.offset,
                                format!("unexpected name '{name}' in expression position"),
                            ))
                        }
                    }
                }
            }
            other => Err(ParseError::new(
                tok.offset,
                format!("unexpected {other} in expression position"),
            )),
        }
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen)? {
            loop {
                args.push(self.parse_expr_single()?);
                if !self.eat(&TokenKind::Comma)? {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::FunctionCall { name, args })
    }

    // ------------------------------------------------------------------
    // Direct element constructors (raw character mode)
    // ------------------------------------------------------------------

    fn parse_direct_constructor(&mut self, lt_offset: usize) -> Result<Expr> {
        // Rewind the lexer to the '<' and drop the buffered token.
        self.peeked = None;
        self.lexer.set_pos(lt_offset);
        self.parse_direct_element_raw()
    }

    fn parse_direct_element_raw(&mut self) -> Result<Expr> {
        let start = self.lexer.pos();
        if !self.lexer.raw_eat("<") {
            return Err(ParseError::new(start, "expected '<'"));
        }
        let name = self.lexer.raw_name()?;
        let mut attributes = Vec::new();

        loop {
            self.skip_raw_ws();
            if self.lexer.raw_eat("/>") {
                return Ok(Expr::DirectElement {
                    name,
                    attributes,
                    content: Vec::new(),
                });
            }
            if self.lexer.raw_eat(">") {
                break;
            }
            let attr_name = self.lexer.raw_name()?;
            self.skip_raw_ws();
            if !self.lexer.raw_eat("=") {
                return Err(ParseError::new(
                    self.lexer.pos(),
                    "expected '=' in attribute",
                ));
            }
            self.skip_raw_ws();
            let quote = match self.lexer.raw_peek() {
                Some(q @ (b'"' | b'\'')) => q as char,
                _ => {
                    return Err(ParseError::new(
                        self.lexer.pos(),
                        "expected quoted attribute value",
                    ))
                }
            };
            self.lexer.raw_bump();
            let parts = self.parse_constructor_parts(Some(quote))?;
            attributes.push((attr_name, parts));
        }

        // Element content.
        let mut content = Vec::new();
        loop {
            if self.lexer.raw_starts_with("</") {
                self.lexer.raw_eat("</");
                let close = self.lexer.raw_name()?;
                if close != name {
                    return Err(ParseError::new(
                        self.lexer.pos(),
                        format!("mismatched constructor tags: <{name}> closed by </{close}>"),
                    ));
                }
                self.skip_raw_ws();
                if !self.lexer.raw_eat(">") {
                    return Err(ParseError::new(self.lexer.pos(), "expected '>'"));
                }
                break;
            }
            if self.lexer.raw_starts_with("<!--") {
                // Skip comments inside constructors.
                self.lexer.raw_eat("<!--");
                while !self.lexer.raw_starts_with("-->") {
                    if self.lexer.raw_peek().is_none() {
                        return Err(ParseError::new(self.lexer.pos(), "unterminated comment"));
                    }
                    self.lexer.raw_bump();
                }
                self.lexer.raw_eat("-->");
                continue;
            }
            if self.lexer.raw_starts_with("<") {
                let nested = self.parse_direct_element_raw()?;
                content.push(ConstructorContent::Expr(nested));
                continue;
            }
            if self.lexer.raw_peek().is_none() {
                return Err(ParseError::new(
                    self.lexer.pos(),
                    format!("unterminated element constructor <{name}>"),
                ));
            }
            let mut parts = self.parse_constructor_parts(None)?;
            content.append(&mut parts);
        }

        Ok(Expr::DirectElement {
            name,
            attributes,
            content,
        })
    }

    /// Parse text / enclosed-expression parts.  With `Some(quote)` this is an
    /// attribute value (terminated by the quote); with `None` it is element
    /// content (terminated by `<`, which is left unconsumed).
    fn parse_constructor_parts(&mut self, quote: Option<char>) -> Result<Vec<ConstructorContent>> {
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match self.lexer.raw_peek() {
                None => {
                    if quote.is_some() {
                        return Err(ParseError::new(
                            self.lexer.pos(),
                            "unterminated attribute value",
                        ));
                    }
                    break;
                }
                Some(c) if quote == Some(c as char) => {
                    self.lexer.raw_bump();
                    break;
                }
                Some(b'<') if quote.is_none() => break,
                Some(b'{') => {
                    if self.lexer.raw_starts_with("{{") {
                        self.lexer.raw_eat("{{");
                        text.push('{');
                        continue;
                    }
                    self.flush_ctor_text(&mut text, &mut parts, quote.is_some());
                    self.lexer.raw_eat("{");
                    // Token mode for the enclosed expression.
                    let expr = self.parse_expr()?;
                    self.expect(&TokenKind::RBrace)?;
                    // `expect` may have pulled the token after '}' into the
                    // buffer — push it back so raw parsing resumes correctly.
                    if let Some(tok) = self.peeked.take() {
                        self.lexer.set_pos(tok.offset);
                    }
                    parts.push(ConstructorContent::Expr(expr));
                }
                Some(b'}') => {
                    if self.lexer.raw_starts_with("}}") {
                        self.lexer.raw_eat("}}");
                        text.push('}');
                    } else {
                        return Err(ParseError::new(
                            self.lexer.pos(),
                            "'}' must be escaped as '}}' in constructor content",
                        ));
                    }
                }
                Some(b'&') => {
                    // Minimal entity support in constructor content.
                    let rest = &self.lexer.source()[self.lexer.pos()..];
                    let decoded = ["amp;", "lt;", "gt;", "quot;", "apos;"]
                        .iter()
                        .zip(['&', '<', '>', '"', '\''])
                        .find(|(ent, _)| rest[1..].starts_with(**ent));
                    match decoded {
                        Some((ent, ch)) => {
                            text.push(ch);
                            for _ in 0..ent.len() + 1 {
                                self.lexer.raw_bump();
                            }
                        }
                        None => {
                            text.push('&');
                            self.lexer.raw_bump();
                        }
                    }
                }
                Some(c) => {
                    text.push(c as char);
                    self.lexer.raw_bump();
                }
            }
        }
        self.flush_ctor_text(&mut text, &mut parts, quote.is_some());
        Ok(parts)
    }

    fn flush_ctor_text(
        &self,
        text: &mut String,
        parts: &mut Vec<ConstructorContent>,
        keep_whitespace: bool,
    ) {
        if text.is_empty() {
            return;
        }
        // Boundary whitespace in element content is stripped (default XQuery
        // behaviour); attribute values keep their whitespace.
        if !keep_whitespace && text.chars().all(char::is_whitespace) {
            text.clear();
            return;
        }
        parts.push(ConstructorContent::Text(std::mem::take(text)));
    }

    fn skip_raw_ws(&mut self) {
        while let Some(c) = self.lexer.raw_peek() {
            if c.is_ascii_whitespace() {
                self.lexer.raw_bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_sequences() {
        assert_eq!(
            parse_expr("1, 'a', 2.5").unwrap(),
            Expr::Sequence(vec![
                Expr::Literal(Literal::Integer(1)),
                Expr::Literal(Literal::String("a".into())),
                Expr::Literal(Literal::Double(2.5)),
            ])
        );
        assert_eq!(parse_expr("()").unwrap(), Expr::EmptySequence);
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let expr = parse_expr("1 + 2 * 3").unwrap();
        match expr {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => match *rhs {
                Expr::Binary {
                    op: BinaryOp::Mul, ..
                } => {}
                other => panic!("expected multiplication on the right, got {other:?}"),
            },
            other => panic!("expected addition at the top, got {other:?}"),
        }
    }

    #[test]
    fn parses_flwor_with_where() {
        let expr = parse_expr(
            "for $c in doc('c.xml')//course let $p := $c/prerequisites where count($p) > 0 return $c",
        )
        .unwrap();
        match expr {
            Expr::For { var, body, .. } => {
                assert_eq!(var, "c");
                match *body {
                    Expr::Let { var, body, .. } => {
                        assert_eq!(var, "p");
                        assert!(matches!(*body, Expr::If { .. }));
                    }
                    other => panic!("expected let, got {other:?}"),
                }
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_fixpoint_form() {
        let expr = parse_expr(
            "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
             recurse $x/id(./prerequisites/pre_code)",
        )
        .unwrap();
        match expr {
            Expr::Fixpoint { var, seed, body } => {
                assert_eq!(var, "x");
                assert!(matches!(*seed, Expr::Path { .. }));
                assert!(body.has_free_var("x"));
            }
            other => panic!("expected fixpoint, got {other:?}"),
        }
    }

    #[test]
    fn parses_paths_axes_and_predicates() {
        let expr = parse_expr("$doc//open_auction[seller/@person = $id]/bidder/personref").unwrap();
        // Just check the overall shape: a Path whose innermost input is $doc.
        let mut found_var = false;
        expr.walk(&mut |e| {
            if matches!(e, Expr::VarRef(v) if v == "doc") {
                found_var = true;
            }
        });
        assert!(found_var);

        let expr = parse_expr("$x/self::a").unwrap();
        match expr {
            Expr::Path { step, .. } => match *step {
                Expr::AxisStep { axis, test, .. } => {
                    assert_eq!(axis, Axis::SelfAxis);
                    assert_eq!(test, NodeTest::Name("a".into()));
                }
                other => panic!("expected axis step, got {other:?}"),
            },
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn double_slash_desugars_to_descendant_or_self() {
        let expr = parse_expr("$d//person").unwrap();
        let mut saw_dos = false;
        expr.walk(&mut |e| {
            if let Expr::AxisStep { axis, .. } = e {
                if *axis == Axis::DescendantOrSelf {
                    saw_dos = true;
                }
            }
        });
        assert!(saw_dos);
    }

    #[test]
    fn parses_function_call_as_path_step() {
        let expr = parse_expr("$cs/id(./prerequisites/pre_code)").unwrap();
        match expr {
            Expr::Path { step, .. } => match *step {
                Expr::FunctionCall { name, args } => {
                    assert_eq!(name, "id");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("expected function call step, got {other:?}"),
            },
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_and_quantified() {
        let expr = parse_expr("if (empty($x)) then 1 else 2").unwrap();
        assert!(matches!(expr, Expr::If { .. }));

        let expr = parse_expr("some $y in $x satisfies $y/@id = 'a'").unwrap();
        assert!(matches!(expr, Expr::Quantified { every: false, .. }));

        let expr = parse_expr("every $y in $x, $z in $y satisfies $z").unwrap();
        match expr {
            Expr::Quantified {
                every: true, cond, ..
            } => {
                assert!(matches!(*cond, Expr::Quantified { every: true, .. }));
            }
            other => panic!("expected nested quantified, got {other:?}"),
        }
    }

    #[test]
    fn parses_typeswitch() {
        let expr = parse_expr(
            "typeswitch ($x) case element(a) return 1 case $v as text() return 2 default return 3",
        )
        .unwrap();
        match expr {
            Expr::Typeswitch { cases, .. } => {
                assert_eq!(cases.len(), 3);
                assert!(cases[2].seq_type.is_none());
                assert_eq!(cases[1].var.as_deref(), Some("v"));
            }
            other => panic!("expected typeswitch, got {other:?}"),
        }
    }

    #[test]
    fn parses_set_operations_and_comparisons() {
        let expr = parse_expr("$a union $b except $c").unwrap();
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Union,
                ..
            }
        ));
        let expr = parse_expr("$a = $b").unwrap();
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::GeneralEq,
                ..
            }
        ));
        let expr = parse_expr("$a is $b").unwrap();
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Is,
                ..
            }
        ));
    }

    #[test]
    fn parses_direct_constructor_with_enclosed_exprs() {
        let expr = parse_expr(
            "<person id=\"{ $p/@id }\">\n  { $p/name }\n  <tag>literal</tag>\n</person>",
        )
        .unwrap();
        match expr {
            Expr::DirectElement {
                name,
                attributes,
                content,
            } => {
                assert_eq!(name, "person");
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes[0].0, "id");
                assert!(matches!(attributes[0].1[0], ConstructorContent::Expr(_)));
                // Whitespace-only runs dropped: expr + nested element remain.
                assert_eq!(content.len(), 2);
            }
            other => panic!("expected direct element, got {other:?}"),
        }
    }

    #[test]
    fn parses_computed_constructors() {
        let expr = parse_expr("element person { $p/@id }").unwrap();
        assert!(matches!(expr, Expr::ComputedElement { .. }));
        let expr = parse_expr("text { 'c' }").unwrap();
        assert!(matches!(expr, Expr::ComputedText { .. }));
        let expr = parse_expr("attribute id { 4 }").unwrap();
        assert!(matches!(expr, Expr::ComputedAttribute { .. }));
    }

    #[test]
    fn parses_module_with_functions() {
        let module = parse_query(
            "declare function rec ($cs) as node()* { $cs/id(./prerequisites/pre_code) };\n\
             declare function fix ($x) as node()* {\n\
               let $res := rec($x) return if (empty($x except $res)) then $res else fix($res union $x)\n\
             };\n\
             let $seed := doc('curriculum.xml')/curriculum/course[@code='c1']\n\
             return fix(rec($seed))",
        )
        .unwrap();
        assert_eq!(module.functions.len(), 2);
        assert_eq!(module.functions[0].name, "rec");
        assert_eq!(module.functions[1].params, vec!["x".to_string()]);
        assert!(matches!(module.body, Expr::Let { .. }));
    }

    #[test]
    fn parses_declared_variables() {
        let module =
            parse_query("declare variable $doc := doc('auction.xml');\n$doc//person").unwrap();
        assert_eq!(module.variables.len(), 1);
        assert_eq!(module.variables[0].0, "doc");
    }

    #[test]
    fn paper_query_q2_parses() {
        let expr = parse_expr(
            "let $seed := (<a/>,<b><c><d/></c></b>)\n\
             return with $x seeded by $seed\n\
             recurse if (count($x/self::a)) then $x/* else ()",
        )
        .unwrap();
        match expr {
            Expr::Let { value, body, .. } => {
                assert!(matches!(*value, Expr::Sequence(_)));
                assert!(body.is_fixpoint());
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn reports_errors_for_malformed_input() {
        assert!(parse_expr("for $x in").is_err());
        assert!(parse_expr("if (1) then 2").is_err());
        assert!(parse_expr("with $x seeded $y recurse $x").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("$x[").is_err());
        assert!(parse_expr("<a><b></a>").is_err());
        // A prolog without a main expression is not a complete query.
        assert!(parse_query("declare function f() { 1 }").is_err());
        assert!(parse_expr("order by").is_err());
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("$x $y").is_err());
    }
}
