//! A streaming lexer for the XQuery subset.
//!
//! The lexer is deliberately *resettable*: direct element constructors are
//! parsed character-by-character by the parser (XQuery's grammar is not
//! context free at this point), so the parser occasionally rewinds the lexer
//! to a byte offset and continues in "raw" mode before resuming token mode.

use crate::error::ParseError;
use crate::token::{Token, TokenKind};
use crate::Result;

/// Streaming tokenizer over XQuery source text.
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    source: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            source,
            bytes: source.as_bytes(),
            pos: 0,
        }
    }

    /// The full source text.
    pub fn source(&self) -> &'a str {
        self.source
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Rewind/advance to an absolute byte position.
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos.min(self.bytes.len());
    }

    /// Peek the byte at the current position (raw mode).
    pub fn raw_peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advance one byte (raw mode).
    pub fn raw_bump(&mut self) {
        if self.pos < self.bytes.len() {
            self.pos += 1;
        }
    }

    /// `true` if the remaining input starts with `s` (raw mode).
    pub fn raw_starts_with(&self, s: &str) -> bool {
        self.source[self.pos..].starts_with(s)
    }

    /// Consume `s` if the remaining input starts with it (raw mode).
    pub fn raw_eat(&mut self, s: &str) -> bool {
        if self.raw_starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Read a raw XML name at the current position (raw mode).
    ///
    /// At most one `:` is consumed (the prefix separator), and only when it
    /// is followed by a name-start character — this keeps `self::a` from
    /// being swallowed as a single name and leaves `:=` / `::` intact.
    pub fn raw_name(&mut self) -> Result<String> {
        let start = self.pos;
        let mut seen_colon = false;
        while let Some(c) = self.raw_peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.') {
                self.pos += 1;
            } else if ch == ':' && !seen_colon {
                let next = self.bytes.get(self.pos + 1).copied();
                let next_is_name_start = next
                    .map(|b| (b as char).is_ascii_alphabetic() || b == b'_')
                    .unwrap_or(false);
                let next_next_is_colon = self.bytes.get(self.pos + 1) == Some(&b':');
                if next_is_name_start && !next_next_is_colon {
                    // Could still be `axis::name`; only treat the colon as a
                    // prefix separator when it is not part of `::`.
                    seen_colon = true;
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseError::new(start, "expected a name"));
        }
        Ok(self.source[start..self.pos].to_string())
    }

    /// Skip whitespace and `(: … :)` comments (which may nest).
    pub fn skip_trivia(&mut self) -> Result<()> {
        loop {
            while let Some(c) = self.raw_peek() {
                if c.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.raw_starts_with("(:") {
                let start = self.pos;
                self.pos += 2;
                let mut depth = 1;
                while depth > 0 {
                    if self.pos >= self.bytes.len() {
                        return Err(ParseError::new(start, "unterminated comment"));
                    }
                    if self.raw_starts_with("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.raw_starts_with(":)") {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(c) = self.raw_peek() else {
            return Ok(Token {
                offset,
                kind: TokenKind::Eof,
            });
        };
        let kind = match c {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'[' => {
                self.pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                self.pos += 1;
                TokenKind::RBracket
            }
            b'{' => {
                self.pos += 1;
                TokenKind::LBrace
            }
            b'}' => {
                self.pos += 1;
                TokenKind::RBrace
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'?' => {
                self.pos += 1;
                TokenKind::Question
            }
            b'@' => {
                self.pos += 1;
                TokenKind::At
            }
            b'|' => {
                self.pos += 1;
                TokenKind::Pipe
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'!' => {
                self.pos += 1;
                if self.raw_eat("=") {
                    TokenKind::Ne
                } else {
                    return Err(ParseError::new(offset, "unexpected '!'"));
                }
            }
            b'<' => {
                self.pos += 1;
                if self.raw_eat("=") {
                    TokenKind::Le
                } else if self.raw_eat("<") {
                    TokenKind::Precedes
                } else {
                    // Might be a direct constructor; the parser decides.
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.pos += 1;
                if self.raw_eat("=") {
                    TokenKind::Ge
                } else if self.raw_eat(">") {
                    TokenKind::Follows
                } else {
                    TokenKind::Gt
                }
            }
            b'/' => {
                self.pos += 1;
                if self.raw_eat("/") {
                    TokenKind::DoubleSlash
                } else {
                    TokenKind::Slash
                }
            }
            b':' => {
                self.pos += 1;
                if self.raw_eat("=") {
                    TokenKind::Assign
                } else if self.raw_eat(":") {
                    TokenKind::DoubleColon
                } else {
                    return Err(ParseError::new(offset, "unexpected ':'"));
                }
            }
            b'.' => {
                // Could be `.`, `..` or the start of a decimal like `.5`.
                if self
                    .bytes
                    .get(self.pos + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false)
                {
                    self.lex_number(offset)?
                } else {
                    self.pos += 1;
                    if self.raw_eat(".") {
                        TokenKind::DotDot
                    } else {
                        TokenKind::Dot
                    }
                }
            }
            b'$' => {
                self.pos += 1;
                let name = self
                    .raw_name()
                    .map_err(|_| ParseError::new(offset, "expected variable name after '$'"))?;
                TokenKind::Variable(name)
            }
            b'"' | b'\'' => self.lex_string(offset)?,
            c if c.is_ascii_digit() => self.lex_number(offset)?,
            c if (c as char).is_ascii_alphabetic() || c == b'_' => {
                let name = self.raw_name()?;
                TokenKind::Name(name)
            }
            other => {
                return Err(ParseError::new(
                    offset,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        };
        Ok(Token { offset, kind })
    }

    fn lex_number(&mut self, offset: usize) -> Result<TokenKind> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.raw_peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    // A trailing `.` followed by a non-digit belongs to the
                    // next token (e.g. `1 to 3` vs `$x/.`); only consume the
                    // dot when a digit follows.
                    if self
                        .bytes
                        .get(self.pos + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)
                    {
                        saw_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.raw_peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.source[start..self.pos];
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Double)
                .map_err(|_| ParseError::new(offset, format!("invalid number literal '{text}'")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Integer)
                .map_err(|_| ParseError::new(offset, format!("invalid integer literal '{text}'")))
        }
    }

    fn lex_string(&mut self, offset: usize) -> Result<TokenKind> {
        let quote = self.raw_peek().expect("caller checked quote");
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.raw_peek() {
                None => return Err(ParseError::new(offset, "unterminated string literal")),
                Some(c) if c == quote => {
                    self.pos += 1;
                    // Doubled quote is an escaped quote character.
                    if self.raw_peek() == Some(quote) {
                        value.push(quote as char);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b'&') => {
                    let rest = &self.source[self.pos..];
                    if let Some(end) = rest.find(';') {
                        let entity = &rest[1..end];
                        let decoded = match entity {
                            "amp" => Some('&'),
                            "lt" => Some('<'),
                            "gt" => Some('>'),
                            "quot" => Some('"'),
                            "apos" => Some('\''),
                            _ => None,
                        };
                        match decoded {
                            Some(ch) => {
                                value.push(ch);
                                self.pos += end + 1;
                            }
                            None => {
                                value.push('&');
                                self.pos += 1;
                            }
                        }
                    } else {
                        value.push('&');
                        self.pos += 1;
                    }
                }
                Some(c) => {
                    value.push(c as char);
                    self.pos += 1;
                }
            }
        }
        Ok(TokenKind::String(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let tok = lexer.next_token().unwrap();
            let done = tok.kind == TokenKind::Eof;
            out.push(tok.kind);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        let toks = kinds("( ) [ ] { } , ; := :: / // . .. @ * + - = != < <= > >= << >> | ?");
        use TokenKind::*;
        assert_eq!(
            toks,
            vec![
                LParen,
                RParen,
                LBracket,
                RBracket,
                LBrace,
                RBrace,
                Comma,
                Semicolon,
                Assign,
                DoubleColon,
                Slash,
                DoubleSlash,
                Dot,
                DotDot,
                At,
                Star,
                Plus,
                Minus,
                Eq,
                Ne,
                Lt,
                Le,
                Gt,
                Ge,
                Precedes,
                Follows,
                Pipe,
                Question,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_literals_and_names() {
        let toks = kinds("42 2.75 'it''s' \"a &amp; b\" $var fn:count pre_code");
        use TokenKind::*;
        assert_eq!(
            toks,
            vec![
                Integer(42),
                Double(2.75),
                String("it's".into()),
                String("a & b".into()),
                Variable("var".into()),
                Name("fn:count".into()),
                Name("pre_code".into()),
                Eof
            ]
        );
    }

    #[test]
    fn skips_nested_comments() {
        let toks = kinds("1 (: outer (: inner :) still outer :) 2");
        assert_eq!(
            toks,
            vec![TokenKind::Integer(1), TokenKind::Integer(2), TokenKind::Eof]
        );
    }

    #[test]
    fn number_does_not_swallow_path_dot() {
        let toks = kinds("1 . 2.5 .5");
        assert_eq!(
            toks,
            vec![
                TokenKind::Integer(1),
                TokenKind::Dot,
                TokenKind::Double(2.5),
                TokenKind::Double(0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_errors_with_offsets() {
        let mut lexer = Lexer::new("  #");
        let err = lexer.next_token().unwrap_err();
        assert_eq!(err.offset, 2);

        let mut lexer = Lexer::new("'unterminated");
        assert!(lexer.next_token().is_err());

        let mut lexer = Lexer::new("(: never closed");
        assert!(lexer.next_token().is_err());
    }

    #[test]
    fn set_pos_allows_re_lexing() {
        let mut lexer = Lexer::new("a b");
        let first = lexer.next_token().unwrap();
        let _ = lexer.next_token().unwrap();
        lexer.set_pos(first.offset);
        let again = lexer.next_token().unwrap();
        assert_eq!(again.kind, TokenKind::Name("a".into()));
    }
}
