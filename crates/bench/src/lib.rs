#![warn(missing_docs)]

//! Shared benchmark harness: workload setup and measured runs.
//!
//! Table 2 of the paper reports, for each workload and input size, the
//! evaluation time under Naïve and Delta on two processors
//! (MonetDB/XQuery's algebraic µ/µ∆ operators and Saxon's source-level
//! recursion), plus the total number of nodes fed back into the recursion
//! body and the recursion depth.  [`run_cell`] produces one such cell; the
//! `table2` binary and the Criterion benches are thin wrappers around it.
//!
//! Every cell is driven through the prepared-query API: the workload query
//! is prepared **once** (parse + distributivity analysis + plan compilation)
//! and the measured region is a single [`PreparedQuery::execute`] with the
//! seed node set supplied through a `$seed` binding.  In particular the
//! per-item workloads (one fixpoint per seed node, the shape of Figure 10's
//! bidder networks and the per-course curriculum check) reuse one compiled
//! plan across *all* seeds instead of re-parsing and re-compiling the
//! recursion body per seed.

use std::time::{Duration, Instant};

use xqy_datagen::{auction, curriculum, hospital, play, Scale};
use xqy_ifp::{Bindings, Engine, Parallelism, PreparedQuery, Strategy};

pub use xqy_ifp::Backend;

/// Naïve or Delta, uniformly over both back-ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Figure 3(a) / µ.
    Naive,
    /// Figure 3(b) / µ∆.
    Delta,
}

impl Algorithm {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "Naive",
            Algorithm::Delta => "Delta",
        }
    }

    /// The (forced) engine strategy for this algorithm.
    pub fn strategy(&self) -> Strategy {
        match self {
            Algorithm::Naive => Strategy::Naive,
            Algorithm::Delta => Strategy::Delta,
        }
    }

    /// The per-occurrence strategy this algorithm forces.
    pub fn strategy_as_fixpoint(&self) -> xqy_ifp::eval::FixpointStrategy {
        self.strategy()
            .forced()
            .expect("Naive/Delta always force an algorithm")
    }
}

/// A benchmark workload: document, seed and recursion body.
pub struct Workload {
    /// Row label, mirroring Table 2 ("Bidder network (small)", …).
    pub label: String,
    /// Document URI.
    pub uri: &'static str,
    /// Generated XML document.
    pub xml: String,
    /// Attribute names registered as ID-typed.
    pub id_attrs: Vec<&'static str>,
    /// Query computing the seed node sequence (bound to `$seed`).
    pub seed_query: String,
    /// The recursion body (a function of `$x`).
    pub body: &'static str,
    /// When `true` a separate fixpoint is run per seed node (the shape of
    /// Figure 10's per-person bidder network and of the per-course
    /// curriculum check); statistics are summed over the fixpoints and the
    /// depth is their maximum.  When `false` a single fixpoint is seeded
    /// with the whole seed sequence (the hospital workload).
    pub per_item: bool,
}

impl Workload {
    /// The IFP query, with the seed node set left as the external variable
    /// `$seed` so one prepared query serves every seed assignment.
    pub fn query(&self) -> String {
        if self.per_item {
            format!(
                "for $s in $seed return (with $x seeded by $s recurse {})",
                self.body
            )
        } else {
            self.batched_query()
        }
    }

    /// The **batched** form of a per-item workload: a bare fixpoint over
    /// `$seed`, executed through [`PreparedQuery::execute_batched`] so the
    /// whole seed set runs as one multi-source fixpoint (instead of the
    /// per-item `for`-loop of [`Workload::query`], which runs one fixpoint
    /// per seed).  The two forms return the same node multiset.
    pub fn batched_query(&self) -> String {
        format!("with $x seeded by $seed recurse {}", self.body)
    }
}

/// The measurements of one Table-2 cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Wall-clock evaluation time (the `execute` call only — preparation is
    /// amortized outside the measured region).
    pub elapsed: Duration,
    /// Result cardinality (nodes in the fixpoint).
    pub result_size: usize,
    /// Total number of nodes fed back into the recursion body.
    pub nodes_fed_back: u64,
    /// Recursion depth (iterations of the do-while loop).
    pub depth: usize,
}

/// Build the bidder-network workload at a scale.
pub fn bidder_network(scale: Scale) -> Workload {
    let config = auction::AuctionConfig::for_scale(scale);
    Workload {
        label: format!("Bidder network ({})", scale.name()),
        uri: auction::DOC_URI,
        xml: auction::generate(&config),
        id_attrs: vec![],
        seed_query: format!("doc('{}')/site/people/person", auction::DOC_URI),
        body: auction::BODY,
        per_item: true,
    }
}

/// Build the Romeo-and-Juliet-style dialog workload.
pub fn dialogs(scale: Scale) -> Workload {
    let config = play::PlayConfig::for_scale(scale);
    Workload {
        label: "Romeo and Juliet".to_string(),
        uri: play::DOC_URI,
        xml: play::generate(&config),
        id_attrs: vec![],
        seed_query: format!("doc('{}')//SPEECH[@start='1']", play::DOC_URI),
        body: play::BODY,
        per_item: true,
    }
}

/// Build the curriculum workload at a scale.
pub fn curriculum_workload(scale: Scale) -> Workload {
    let config = curriculum::CurriculumConfig::for_scale(scale);
    Workload {
        label: format!("Curriculum ({})", scale.name()),
        uri: curriculum::DOC_URI,
        xml: curriculum::generate(&config),
        id_attrs: vec!["code"],
        seed_query: format!("doc('{}')/curriculum/course", curriculum::DOC_URI),
        body: curriculum::BODY,
        per_item: true,
    }
}

/// Build the hospital workload at a scale.
pub fn hospital_workload(scale: Scale) -> Workload {
    let config = hospital::HospitalConfig::for_scale(scale);
    Workload {
        label: format!("Hospital ({})", scale.name()),
        uri: hospital::DOC_URI,
        xml: hospital::generate(&config),
        id_attrs: vec![],
        seed_query: format!(
            "doc('{}')/hospital/patient[@disease='yes']",
            hospital::DOC_URI
        ),
        body: hospital::BODY,
        per_item: false,
    }
}

/// Prepare an engine with the workload's document loaded.
pub fn engine_for(workload: &Workload) -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids(workload.uri, &workload.xml, &workload.id_attrs)
        .expect("workload document parses");
    engine
}

/// Prepare the workload query on `engine` for a `backend` × `algorithm`
/// cell (parse + analysis + plan compilation, done once per cell).
pub fn prepare_cell(
    engine: &mut Engine,
    workload: &Workload,
    backend: Backend,
    algorithm: Algorithm,
) -> PreparedQuery {
    engine.set_strategy(algorithm.strategy());
    engine
        .prepare(&workload.query())
        .expect("workload query parses")
        .with_backend(backend)
}

/// The `$seed` binding for a workload: its seed query evaluated once.
pub fn seed_bindings(engine: &mut Engine, workload: &Workload) -> Bindings {
    let seeds = engine
        .run(&workload.seed_query)
        .expect("seed query runs")
        .result;
    Bindings::new().with("seed", seeds)
}

/// Turn an executed outcome into the Table-2 quantities: statistics are
/// summed over the fixpoint runs and the depth is their maximum.
pub fn cell_result(outcome: &xqy_ifp::QueryOutcome, elapsed: Duration) -> CellResult {
    CellResult {
        elapsed,
        result_size: outcome.result.len(),
        nodes_fed_back: outcome.fixpoints.iter().map(|s| s.nodes_fed_back).sum(),
        depth: outcome
            .fixpoints
            .iter()
            .map(|s| s.iterations)
            .max()
            .unwrap_or(0),
    }
}

/// Run one cell: `workload` × `backend` × `algorithm`.  Prepares once,
/// measures one execution.
pub fn run_cell(
    engine: &mut Engine,
    workload: &Workload,
    backend: Backend,
    algorithm: Algorithm,
) -> CellResult {
    let prepared = prepare_cell(engine, workload, backend, algorithm);
    let bindings = seed_bindings(engine, workload);
    let start = Instant::now();
    let outcome = prepared
        .execute(engine, &bindings)
        .expect("workload query runs");
    let elapsed = start.elapsed();
    debug_assert!(outcome
        .occurrences
        .iter()
        .all(|o| o.strategy == algorithm.strategy_as_fixpoint()));
    cell_result(&outcome, elapsed)
}

/// Run the **batched** variant of a per-item cell: the whole seed set as
/// one multi-source fixpoint via [`PreparedQuery::execute_batched`]
/// (`workload` × `backend` × `algorithm`).  Prepares once, measures one
/// batched execution; the resulting [`CellResult`] is directly comparable
/// with [`run_cell`] on the same workload (same result cardinality, same
/// depth convention — the maximum per-seed recursion depth).
pub fn run_cell_batched(
    engine: &mut Engine,
    workload: &Workload,
    backend: Backend,
    algorithm: Algorithm,
) -> CellResult {
    run_cell_batched_parallel(
        engine,
        workload,
        backend,
        algorithm,
        Parallelism::Sequential,
    )
}

/// [`run_cell_batched`] with an explicit thread policy: the batched run's
/// per-seed phases shard across `parallelism.threads()` OS threads over a
/// frozen store view.  `Parallelism::Sequential` reproduces
/// [`run_cell_batched`] exactly (same code path, same statistics), so the
/// two cells are directly comparable.
pub fn run_cell_batched_parallel(
    engine: &mut Engine,
    workload: &Workload,
    backend: Backend,
    algorithm: Algorithm,
    parallelism: Parallelism,
) -> CellResult {
    engine.set_strategy(algorithm.strategy());
    let prepared = engine
        .prepare(&workload.batched_query())
        .expect("workload query parses")
        .with_backend(backend)
        .with_parallelism(parallelism);
    let seeds = engine
        .run(&workload.seed_query)
        .expect("seed query runs")
        .result;
    let start = Instant::now();
    let batch = prepared
        .execute_batched(engine, "seed", &seeds, &Bindings::new())
        .expect("workload query runs");
    let elapsed = start.elapsed();
    cell_result(&batch.outcome, elapsed)
}

/// The rows of Table 2 at "quick" scales (small/medium); `full` adds the
/// large and huge instances.
pub fn table2_rows(full: bool) -> Vec<Workload> {
    let mut rows = vec![bidder_network(Scale::Small), bidder_network(Scale::Medium)];
    if full {
        rows.push(bidder_network(Scale::Large));
        rows.push(bidder_network(Scale::Huge));
    }
    rows.push(dialogs(Scale::Medium));
    rows.push(curriculum_workload(Scale::Medium));
    if full {
        rows.push(curriculum_workload(Scale::Large));
    }
    rows.push(hospital_workload(if full {
        Scale::Large
    } else {
        Scale::Medium
    }));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_ifp::eval::FixpointBackendTag;

    #[test]
    fn cells_agree_across_backends_and_algorithms() {
        let workload = curriculum_workload(Scale::Small);
        let mut sizes = Vec::new();
        for backend in [Backend::SourceLevel, Backend::Algebraic] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let mut engine = engine_for(&workload);
                let cell = run_cell(&mut engine, &workload, backend, algorithm);
                sizes.push(cell.result_size);
                assert!(cell.depth >= 1);
                assert!(cell.nodes_fed_back > 0);
            }
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes: {sizes:?}");
    }

    #[test]
    fn delta_feeds_back_fewer_nodes_on_the_bidder_network() {
        let workload = bidder_network(Scale::Small);
        let mut engine = engine_for(&workload);
        let naive = run_cell(
            &mut engine,
            &workload,
            Backend::SourceLevel,
            Algorithm::Naive,
        );
        let delta = run_cell(
            &mut engine,
            &workload,
            Backend::SourceLevel,
            Algorithm::Delta,
        );
        assert_eq!(naive.result_size, delta.result_size);
        assert!(delta.nodes_fed_back < naive.nodes_fed_back);
    }

    #[test]
    fn algebraic_cells_reuse_one_compiled_plan_across_seeds() {
        // The per-item curriculum workload runs one fixpoint per course; the
        // prepared query must compile its recursion body exactly once.
        let workload = curriculum_workload(Scale::Small);
        let mut engine = engine_for(&workload);
        let prepared = prepare_cell(&mut engine, &workload, Backend::Algebraic, Algorithm::Delta);
        let bindings = seed_bindings(&mut engine, &workload);
        let compiles_before = xqy_ifp::algebra::compile_count();
        let outcome = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(xqy_ifp::algebra::compile_count(), compiles_before);
        assert!(outcome.fixpoints.len() > 1, "one fixpoint per seed course");
        assert!(outcome
            .fixpoints
            .iter()
            .all(|s| s.backend == FixpointBackendTag::Algebraic));
    }

    #[test]
    fn batched_cells_match_per_item_cells() {
        // The batched variant of a per-item cell computes the same result
        // set with the same (max) depth, while feeding back fewer rows and
        // running as one batched fixpoint.
        let workload = curriculum_workload(Scale::Small);
        for backend in [Backend::Algebraic, Backend::Auto] {
            let mut engine = engine_for(&workload);
            let per_item = run_cell(&mut engine, &workload, backend, Algorithm::Delta);
            let batched = run_cell_batched(&mut engine, &workload, backend, Algorithm::Delta);
            assert_eq!(batched.result_size, per_item.result_size);
            assert_eq!(batched.depth, per_item.depth);
            assert!(
                batched.nodes_fed_back <= per_item.nodes_fed_back,
                "batched ({}) must not feed back more than per-item ({})",
                batched.nodes_fed_back,
                per_item.nodes_fed_back
            );
        }
    }

    #[test]
    fn parallel_batched_cells_match_sequential_cells() {
        // The thread policy must change only the wall-clock column: result
        // cardinality, fed-back counts and depth are all part of the
        // sequential-equivalence contract.
        let workload = curriculum_workload(Scale::Small);
        for backend in [Backend::Algebraic, Backend::SourceLevel] {
            let mut engine = engine_for(&workload);
            let sequential = run_cell_batched(&mut engine, &workload, backend, Algorithm::Delta);
            let parallel = run_cell_batched_parallel(
                &mut engine,
                &workload,
                backend,
                Algorithm::Delta,
                Parallelism::Fixed(4),
            );
            assert_eq!(parallel.result_size, sequential.result_size);
            assert_eq!(parallel.nodes_fed_back, sequential.nodes_fed_back);
            assert_eq!(parallel.depth, sequential.depth);
        }
    }

    #[test]
    fn quick_table_has_the_expected_rows() {
        let rows = table2_rows(false);
        assert_eq!(rows.len(), 5);
        let full = table2_rows(true);
        assert_eq!(full.len(), 8);
    }
}
