//! Regenerate Table 2 of the paper: Naïve vs Delta evaluation times, total
//! number of nodes fed back, and recursion depth, for every workload on both
//! back-ends — plus the **batched** variant of the per-item cells, where all
//! seeds run as one multi-source fixpoint over a `(seed, node)` relation.
//!
//! ```bash
//! cargo run --release -p xqy_bench --bin table2             # quick scales
//! cargo run --release -p xqy_bench --bin table2 -- --quick  # same, explicit (CI smoke run)
//! cargo run --release -p xqy_bench --bin table2 -- --full   # paper-sized rows
//! ```
//!
//! Every cell goes through the prepared-query surface: the workload query is
//! prepared once per cell and the timed region is one
//! `PreparedQuery::execute` (or `execute_batched` for the `batch Delta`
//! column) with the seed nodes bound to `$seed`.
//!
//! Absolute times are not comparable with the paper's 2008 hardware and
//! engines; the reproduced quantities are the *ratios* (Delta vs Naïve,
//! batched vs per-seed), the engine-independent "nodes fed back" columns and
//! the recursion depths.

use xqy_bench::{
    engine_for, run_cell, run_cell_batched, run_cell_batched_parallel, table2_rows, Algorithm,
    Backend,
};
use xqy_ifp::Parallelism;

fn main() {
    // `--quick` (the default) keeps the small/medium rows; `--full` adds
    // the paper-sized instances.
    let full = std::env::args().any(|a| a == "--full");
    let rows = table2_rows(full);
    // The parallel batched column shards over one thread per core (or over
    // whatever XQY_FIXPOINT_THREADS requests); on a single-core machine it
    // degenerates to the sequential batched cell.
    let parallelism = Parallelism::from_env().unwrap_or(Parallelism::Auto);
    let threads = parallelism.threads();

    println!(
        "{:<28} | {:>13} {:>13} {:>13} {:>13} | {:>13} {:>13} {:>13} | {:>12} {:>12} | {:>5}",
        "Query",
        "algebra Naive",
        "algebra Delta",
        "batch Delta",
        format!("par batch t{threads}"),
        "source Naive",
        "source Delta",
        "src batch",
        "fed (Naive)",
        "fed (Delta)",
        "depth"
    );
    println!("{}", "-".repeat(174));

    let mut json_rows: Vec<String> = Vec::new();

    for workload in rows {
        let mut cells = Vec::new();
        for backend in [Backend::Algebraic, Backend::SourceLevel] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let mut engine = engine_for(&workload);
                cells.push(run_cell(&mut engine, &workload, backend, algorithm));
            }
        }
        // The batched multi-source cells only apply to per-item workloads
        // (a single-fixpoint workload already runs one fixpoint): one on
        // the relational back-end, one through the batched source-level
        // driver (distinct-frontier sharing in the interpreter).
        let batched = workload.per_item.then(|| {
            let mut engine = engine_for(&workload);
            run_cell_batched(&mut engine, &workload, Backend::Algebraic, Algorithm::Delta)
        });
        // The same relational batched cell, sharded over `threads` OS
        // threads (the tentpole of PR 6) — the thread-count column.
        let par_batched = (workload.per_item && threads > 1).then(|| {
            let mut engine = engine_for(&workload);
            run_cell_batched_parallel(
                &mut engine,
                &workload,
                Backend::Algebraic,
                Algorithm::Delta,
                parallelism,
            )
        });
        let src_batched = workload.per_item.then(|| {
            let mut engine = engine_for(&workload);
            run_cell_batched(
                &mut engine,
                &workload,
                Backend::SourceLevel,
                Algorithm::Delta,
            )
        });
        let (alg_naive, alg_delta, src_naive, src_delta) =
            (&cells[0], &cells[1], &cells[2], &cells[3]);
        assert_eq!(alg_naive.result_size, alg_delta.result_size);
        assert_eq!(src_naive.result_size, src_delta.result_size);
        if let Some(batched) = &batched {
            assert_eq!(batched.result_size, alg_delta.result_size);
        }
        if let Some(par_batched) = &par_batched {
            // Sequential equivalence: the sharded run reports the same
            // result set, fed-back total and depth as the sequential one.
            let batched = batched.as_ref().expect("parallel implies batched");
            assert_eq!(par_batched.result_size, batched.result_size);
            assert_eq!(par_batched.nodes_fed_back, batched.nodes_fed_back);
            assert_eq!(par_batched.depth, batched.depth);
        }
        if let Some(src_batched) = &src_batched {
            assert_eq!(src_batched.result_size, src_delta.result_size);
        }
        if let (Some(batched), Some(par_batched)) = (&batched, &par_batched) {
            json_rows.push(format!(
                "    {{\"workload\": \"{}\", \"threads\": {}, \"batch_delta_ns\": {}, \"parallel_batch_delta_ns\": {}, \"speedup\": {:.2}}}",
                workload.label,
                threads,
                batched.elapsed.as_nanos(),
                par_batched.elapsed.as_nanos(),
                batched.elapsed.as_secs_f64() / par_batched.elapsed.as_secs_f64().max(1e-9),
            ));
        }
        let col = |cell: &Option<xqy_bench::CellResult>| match cell {
            Some(cell) => format!("{:>10.1?}", cell.elapsed),
            None => format!("{:>10}", "-"),
        };
        println!(
            "{:<28} | {:>10.1?} {:>10.1?} {:>13} {:>13} | {:>10.1?} {:>10.1?} {:>13} | {:>12} {:>12} | {:>5}",
            workload.label,
            alg_naive.elapsed,
            alg_delta.elapsed,
            col(&batched),
            col(&par_batched),
            src_naive.elapsed,
            src_delta.elapsed,
            col(&src_batched),
            src_naive.nodes_fed_back,
            src_delta.nodes_fed_back,
            src_delta.depth,
        );
    }
    println!();
    println!("(speed-ups: Delta vs Naive per back-end; 'batch Delta' / 'src batch' run all");
    println!(" per-item seeds as one multi-source fixpoint — on the relational executor and");
    println!(" through the batched source-level interpreter driver respectively; 'par batch'");
    println!(" shards the relational batched cell across OS threads over a frozen store");
    println!(" snapshot; 'fed' columns are the engine-independent 'Total # of Nodes Fed");
    println!(" Back' of Table 2.)");

    // Record the thread-count column next to the criterion artifact: the
    // single-run table2 measurements of the parallel batched cells, written
    // when `TABLE2_PARALLEL_JSON` names a file (CI uploads it alongside the
    // bench artifact).
    if let Ok(path) = std::env::var("TABLE2_PARALLEL_JSON") {
        if !path.is_empty() && !json_rows.is_empty() {
            let out = format!(
                "{{\n  \"threads\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
                threads,
                json_rows.join(",\n")
            );
            if let Err(err) = std::fs::write(&path, out) {
                eprintln!("table2: could not write {path}: {err}");
            }
        }
    }
}
