//! Regenerate Table 2 of the paper: Naïve vs Delta evaluation times, total
//! number of nodes fed back, and recursion depth, for every workload on both
//! back-ends.
//!
//! ```bash
//! cargo run --release -p xqy_bench --bin table2             # quick scales
//! cargo run --release -p xqy_bench --bin table2 -- --quick  # same, explicit (CI smoke run)
//! cargo run --release -p xqy_bench --bin table2 -- --full   # paper-sized rows
//! ```
//!
//! Every cell goes through the prepared-query surface: the workload query is
//! prepared once per cell and the timed region is one
//! `PreparedQuery::execute` with the seed nodes bound to `$seed`.
//!
//! Absolute times are not comparable with the paper's 2008 hardware and
//! engines; the reproduced quantities are the *ratios* (Delta vs Naïve), the
//! engine-independent "nodes fed back" columns and the recursion depths.

use xqy_bench::{engine_for, run_cell, table2_rows, Algorithm, Backend};

fn main() {
    // `--quick` (the default) keeps the small/medium rows; `--full` adds
    // the paper-sized instances.
    let full = std::env::args().any(|a| a == "--full");
    let rows = table2_rows(full);

    println!(
        "{:<28} | {:>13} {:>13} | {:>13} {:>13} | {:>12} {:>12} | {:>5}",
        "Query",
        "algebra Naive",
        "algebra Delta",
        "source Naive",
        "source Delta",
        "fed (Naive)",
        "fed (Delta)",
        "depth"
    );
    println!("{}", "-".repeat(132));

    for workload in rows {
        let mut cells = Vec::new();
        for backend in [Backend::Algebraic, Backend::SourceLevel] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let mut engine = engine_for(&workload);
                cells.push(run_cell(&mut engine, &workload, backend, algorithm));
            }
        }
        let (alg_naive, alg_delta, src_naive, src_delta) =
            (&cells[0], &cells[1], &cells[2], &cells[3]);
        assert_eq!(alg_naive.result_size, alg_delta.result_size);
        assert_eq!(src_naive.result_size, src_delta.result_size);
        println!(
            "{:<28} | {:>10.1?} {:>10.1?} | {:>10.1?} {:>10.1?} | {:>12} {:>12} | {:>5}",
            workload.label,
            alg_naive.elapsed,
            alg_delta.elapsed,
            src_naive.elapsed,
            src_delta.elapsed,
            src_naive.nodes_fed_back,
            src_delta.nodes_fed_back,
            src_delta.depth,
        );
    }
    println!();
    println!("(speed-ups: Delta vs Naive per back-end; 'fed' columns are the engine-independent");
    println!(" 'Total # of Nodes Fed Back' of the paper's Table 2.)");
}
