//! Regenerate Table 2 of the paper: Naïve vs Delta evaluation times, total
//! number of nodes fed back, and recursion depth, for every workload on both
//! back-ends — plus the **batched** variant of the per-item cells, where all
//! seeds run as one multi-source fixpoint over a `(seed, node)` relation.
//!
//! ```bash
//! cargo run --release -p xqy_bench --bin table2             # quick scales
//! cargo run --release -p xqy_bench --bin table2 -- --quick  # same, explicit (CI smoke run)
//! cargo run --release -p xqy_bench --bin table2 -- --full   # paper-sized rows
//! ```
//!
//! Every cell goes through the prepared-query surface: the workload query is
//! prepared once per cell and the timed region is one
//! `PreparedQuery::execute` (or `execute_batched` for the `batch Delta`
//! column) with the seed nodes bound to `$seed`.
//!
//! Absolute times are not comparable with the paper's 2008 hardware and
//! engines; the reproduced quantities are the *ratios* (Delta vs Naïve,
//! batched vs per-seed), the engine-independent "nodes fed back" columns and
//! the recursion depths.

use xqy_bench::{engine_for, run_cell, run_cell_batched, table2_rows, Algorithm, Backend};

fn main() {
    // `--quick` (the default) keeps the small/medium rows; `--full` adds
    // the paper-sized instances.
    let full = std::env::args().any(|a| a == "--full");
    let rows = table2_rows(full);

    println!(
        "{:<28} | {:>13} {:>13} {:>13} | {:>13} {:>13} {:>13} | {:>12} {:>12} | {:>5}",
        "Query",
        "algebra Naive",
        "algebra Delta",
        "batch Delta",
        "source Naive",
        "source Delta",
        "src batch",
        "fed (Naive)",
        "fed (Delta)",
        "depth"
    );
    println!("{}", "-".repeat(160));

    for workload in rows {
        let mut cells = Vec::new();
        for backend in [Backend::Algebraic, Backend::SourceLevel] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let mut engine = engine_for(&workload);
                cells.push(run_cell(&mut engine, &workload, backend, algorithm));
            }
        }
        // The batched multi-source cells only apply to per-item workloads
        // (a single-fixpoint workload already runs one fixpoint): one on
        // the relational back-end, one through the batched source-level
        // driver (distinct-frontier sharing in the interpreter).
        let batched = workload.per_item.then(|| {
            let mut engine = engine_for(&workload);
            run_cell_batched(&mut engine, &workload, Backend::Algebraic, Algorithm::Delta)
        });
        let src_batched = workload.per_item.then(|| {
            let mut engine = engine_for(&workload);
            run_cell_batched(
                &mut engine,
                &workload,
                Backend::SourceLevel,
                Algorithm::Delta,
            )
        });
        let (alg_naive, alg_delta, src_naive, src_delta) =
            (&cells[0], &cells[1], &cells[2], &cells[3]);
        assert_eq!(alg_naive.result_size, alg_delta.result_size);
        assert_eq!(src_naive.result_size, src_delta.result_size);
        if let Some(batched) = &batched {
            assert_eq!(batched.result_size, alg_delta.result_size);
        }
        if let Some(src_batched) = &src_batched {
            assert_eq!(src_batched.result_size, src_delta.result_size);
        }
        let col = |cell: &Option<xqy_bench::CellResult>| match cell {
            Some(cell) => format!("{:>10.1?}", cell.elapsed),
            None => format!("{:>10}", "-"),
        };
        println!(
            "{:<28} | {:>10.1?} {:>10.1?} {:>13} | {:>10.1?} {:>10.1?} {:>13} | {:>12} {:>12} | {:>5}",
            workload.label,
            alg_naive.elapsed,
            alg_delta.elapsed,
            col(&batched),
            src_naive.elapsed,
            src_delta.elapsed,
            col(&src_batched),
            src_naive.nodes_fed_back,
            src_delta.nodes_fed_back,
            src_delta.depth,
        );
    }
    println!();
    println!("(speed-ups: Delta vs Naive per back-end; 'batch Delta' / 'src batch' run all");
    println!(" per-item seeds as one multi-source fixpoint — on the relational executor and");
    println!(" through the batched source-level interpreter driver respectively; 'fed'");
    println!(" columns are the engine-independent 'Total # of Nodes Fed Back' of Table 2.)");
}
