//! Load generator for the concurrent query service (PR 7).
//!
//! Drives M worker threads of mixed Table-2-style queries — deep and
//! shallow prerequisite closures plus a plain path — against one shared
//! [`QueryService`], and reports p50/p99 latency and sustained
//! queries-per-second at each worker count, alongside the plan-cache
//! counters.
//!
//! ```bash
//! cargo run --release -p xqy_bench --bin svc             # quick scales
//! cargo run --release -p xqy_bench --bin svc -- --quick  # same, explicit (CI smoke run)
//! cargo run --release -p xqy_bench --bin svc -- --full   # bigger instance, more workers
//! ```
//!
//! Results are written as JSON to `BENCH_service.json` (override the path
//! with `SERVICE_BENCH_JSON`; set it empty to skip the file).  Absolute
//! numbers depend on the machine; the quantities worth tracking are the
//! scaling shape across worker counts and the cache hit rate (every
//! worker but the first should hit the shared plan cache on every query).

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use xqy_datagen::curriculum::{self, CurriculumConfig};
use xqy_datagen::Scale;
use xqy_service::{QueryService, ServiceConfig};

/// Mixed workload over the curriculum instance: a deep closure from the
/// last course, a mid-depth closure, and a non-recursive path lookup.
fn mixed_queries(courses: usize) -> Vec<String> {
    vec![
        format!(
            "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c{}'] \
             recurse $x/id(./prerequisites/pre_code)",
            courses - 1
        ),
        format!(
            "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c{}'] \
             recurse $x/id(./prerequisites/pre_code)",
            courses / 2
        ),
        format!(
            "doc('curriculum.xml')/curriculum/course[@code='c{}']/prerequisites/pre_code",
            courses / 3
        ),
    ]
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Run {
    workers: usize,
    queries: usize,
    wall: Duration,
    p50: Duration,
    p99: Duration,
    cache_hits: u64,
    cache_misses: u64,
}

impl Run {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn run_load(xml: &str, queries: &[String], workers: usize, per_worker: usize) -> Run {
    let service = Arc::new(QueryService::new(ServiceConfig {
        max_concurrent: workers,
        max_queue: workers,
        ..ServiceConfig::default()
    }));
    service
        .load_document_with_ids("curriculum.xml", xml, &["code"])
        .expect("curriculum loads");
    service.publish().expect("publish succeeds");

    // Warm the plan cache so the measured region times execution, not the
    // one-off preparations.
    for query in queries {
        service.execute(query).expect("warmup query runs");
    }
    let warm = service.counters();

    let latencies = Arc::new(Mutex::new(Vec::with_capacity(workers * per_worker)));
    let started = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|worker| {
            let service = Arc::clone(&service);
            let queries = queries.to_vec();
            let latencies = Arc::clone(&latencies);
            thread::spawn(move || {
                let mut local = Vec::with_capacity(per_worker);
                for i in 0..per_worker {
                    let query = &queries[(worker + i) % queries.len()];
                    let t0 = Instant::now();
                    service.execute(query).expect("load query runs");
                    local.push(t0.elapsed());
                }
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread finishes");
    }
    let wall = started.elapsed();

    let mut latencies = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    latencies.sort();
    let counters = service.counters();
    Run {
        workers,
        queries: latencies.len(),
        wall,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        cache_hits: counters.cache.hits - warm.cache.hits,
        cache_misses: counters.cache.misses - warm.cache.misses,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { Scale::Medium } else { Scale::Small };
    let per_worker = if full { 200 } else { 50 };
    let worker_counts: &[usize] = if full { &[1, 2, 4, 8] } else { &[1, 4] };

    let config = CurriculumConfig::for_scale(scale);
    let xml = curriculum::generate(&config);
    let queries = mixed_queries(config.courses);

    println!(
        "service load generator — curriculum {} ({} courses), {} queries/worker",
        scale.name(),
        config.courses,
        per_worker
    );
    println!(
        "{:<8} | {:>10} {:>12} {:>12} {:>12} | {:>10} {:>10}",
        "workers", "queries", "p50", "p99", "qps", "hits", "misses"
    );
    println!("{}", "-".repeat(84));

    let mut json_rows: Vec<String> = Vec::new();
    for &workers in worker_counts {
        let run = run_load(&xml, &queries, workers, per_worker);
        println!(
            "{:<8} | {:>10} {:>12.1?} {:>12.1?} {:>12.1} | {:>10} {:>10}",
            run.workers,
            run.queries,
            run.p50,
            run.p99,
            run.qps(),
            run.cache_hits,
            run.cache_misses,
        );
        json_rows.push(format!(
            "    {{\"workers\": {}, \"queries\": {}, \"wall_ns\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"qps\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            run.workers,
            run.queries,
            run.wall.as_nanos(),
            run.p50.as_nanos(),
            run.p99.as_nanos(),
            run.qps(),
            run.cache_hits,
            run.cache_misses,
        ));
    }
    println!();
    println!("(each run uses a fresh service; the cache is warmed before the measured");
    println!(" region, so 'misses' counts only epoch-movement re-preparations — 0 under");
    println!(" this read-only load.)");

    let path =
        std::env::var("SERVICE_BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    if !path.is_empty() {
        let out = format!(
            "{{\n  \"scale\": \"{}\",\n  \"queries_per_worker\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
            scale.name(),
            per_worker,
            json_rows.join(",\n")
        );
        if let Err(err) = std::fs::write(&path, out) {
            eprintln!("svc: could not write {path}: {err}");
        } else {
            println!("wrote {path}");
        }
    }
}
