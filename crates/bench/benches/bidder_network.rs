//! Table 2, rows 1–4: the XMark-style bidder network, Naïve vs Delta on
//! both back-ends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_bench::{bidder_network, engine_for, run_cell, Algorithm, Backend};
use xqy_datagen::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bidder_network");
    group.sample_size(10);
    // The medium/large/huge instances are exercised by the `table2` binary;
    // keeping the criterion benches at the small scale bounds `cargo bench`.
    for scale in [Scale::Small] {
        let workload = bidder_network(scale);
        for backend in [Backend::SourceLevel, Backend::Algebraic] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let id = BenchmarkId::new(
                    format!("{}/{}", backend.name(), algorithm.name()),
                    scale.name(),
                );
                group.bench_with_input(id, &workload, |b, workload| {
                    let mut engine = engine_for(workload);
                    b.iter(|| run_cell(&mut engine, workload, backend, algorithm));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
