//! Cost-based plan selection benchmark (PR 9).
//!
//! For each quick Table-2 cell this bench measures every *forced* point of
//! the valid plan grid (`{Naïve, Delta} × {source-level, algebraic}`, the
//! batched route where the workload has one) and then the `Auto` knobs,
//! which route through the cost model and its per-occurrence feedback
//! loop.  The acceptance bar is printed and asserted at the end: Auto's
//! steady-state mean must stay within 1.25× of the best forced grid point
//! — i.e. the model (plus one exploration run corrected by feedback) may
//! not settle on a meaningfully wrong plan.
//!
//! Run with `CRITERION_JSON=BENCH_cost.json cargo bench -p xqy_bench
//! --bench cost` to record the baseline; CI records the same cells as
//! `BENCH_cost_ci.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_bench::{curriculum_workload, engine_for, hospital_workload, Backend, Workload};
use xqy_datagen::Scale;
use xqy_ifp::xdm::Sequence;
use xqy_ifp::{Bindings, Engine, PreparedQuery, Strategy};

/// Ratio bar: Auto may cost at most this much of the best forced point.
const AUTO_BUDGET: f64 = 1.25;

struct Cell {
    name: &'static str,
    workload: Workload,
    /// `true`: the seed set runs through `execute_batched` (the per-item
    /// workloads); `false`: one fixpoint seeded with the whole sequence.
    batched: bool,
}

fn quick_cells() -> Vec<Cell> {
    vec![
        Cell {
            name: "curriculum_small",
            workload: curriculum_workload(Scale::Small),
            batched: true,
        },
        Cell {
            name: "hospital_small",
            workload: hospital_workload(Scale::Small),
            batched: false,
        },
    ]
}

/// Prepare the cell's batched-form query under explicit knobs.
fn prepare(
    workload: &Workload,
    strategy: Strategy,
    backend: Backend,
) -> (Engine, PreparedQuery, Sequence) {
    let mut engine = engine_for(workload);
    engine.set_strategy(strategy);
    let prepared = engine
        .prepare(&workload.batched_query())
        .expect("workload query prepares")
        .with_backend(backend);
    let seeds = engine
        .run(&workload.seed_query)
        .expect("seed query runs")
        .result;
    (engine, prepared, seeds)
}

fn run_point(c: &mut Criterion, cell: &Cell, label: &str, strategy: Strategy, backend: Backend) {
    let (mut engine, prepared, seeds) = prepare(&cell.workload, strategy, backend);
    // Warm-up, outside the measured region: lets Auto's feedback loop
    // converge (the first run follows the static estimate, the second may
    // explore a corrected champion) and the executors fill their static
    // caches — the measured quantity is the steady-state plan.
    for _ in 0..3 {
        if cell.batched {
            prepared
                .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                .expect("warm-up executes");
        } else {
            let bindings = Bindings::new().with("seed", seeds.clone());
            prepared
                .execute(&mut engine, &bindings)
                .expect("warm-up executes");
        }
    }
    let mut group = c.benchmark_group("cost");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new(cell.name, label), &seeds, |b, seeds| {
        if cell.batched {
            b.iter(|| {
                black_box(
                    prepared
                        .execute_batched(&mut engine, "seed", seeds, &Bindings::new())
                        .expect("cell executes")
                        .outcome
                        .result
                        .len(),
                )
            })
        } else {
            let bindings = Bindings::new().with("seed", seeds.clone());
            b.iter(|| {
                black_box(
                    prepared
                        .execute(&mut engine, &bindings)
                        .expect("cell executes")
                        .result
                        .len(),
                )
            })
        }
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let cells = quick_cells();
    for cell in &cells {
        // The valid grid for this body: Delta only with a distributivity
        // certificate, the algebraic back-end only when the body compiles.
        let analysis = {
            let mut engine = engine_for(&cell.workload);
            engine.set_strategy(Strategy::Auto);
            engine
                .prepare(&cell.workload.batched_query())
                .expect("workload query prepares")
        };
        let distributive = analysis.distributivity()[0].is_distributive();
        let algebraic = analysis.occurrences()[0].is_algebraic_capable();

        let mut strategies = vec![("naive", Strategy::Naive)];
        if distributive {
            strategies.push(("delta", Strategy::Delta));
        }
        let mut backends = vec![("source", Backend::SourceLevel)];
        if algebraic {
            backends.push(("algebraic", Backend::Algebraic));
        }
        for &(sname, strategy) in &strategies {
            for &(bname, backend) in &backends {
                let label = format!("{sname}_{bname}");
                run_point(c, cell, &label, strategy, backend);
            }
        }
        run_point(c, cell, "auto", Strategy::Auto, Backend::Auto);
    }

    // The acceptance bar: per cell, Auto within AUTO_BUDGET of the best
    // forced grid point.
    let mut failures = Vec::new();
    for cell in &cells {
        let prefix = format!("cost/{}/", cell.name);
        let auto_id = format!("{prefix}auto");
        // Compare on the fastest sample: robust against scheduler outliers
        // in a 10-sample smoke run, and the right quantity anyway — the
        // question is which *plan* each route settles on, not how noisy
        // the host is.
        let auto = c
            .measurements()
            .iter()
            .find(|m| m.id == auto_id)
            .map(|m| m.min_ns)
            .expect("auto cell measured");
        let (best_id, best) = c
            .measurements()
            .iter()
            .filter(|m| m.id.starts_with(&prefix) && m.id != auto_id)
            .map(|m| (m.id.clone(), m.min_ns))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("grid cells measured");
        let ratio = auto / best;
        println!(
            "cost/{}: auto at {ratio:.2}x of best-of-grid ({best_id}) — budget {AUTO_BUDGET}x",
            cell.name
        );
        if ratio > AUTO_BUDGET {
            failures.push(format!(
                "{}: auto {auto:.0}ns is {ratio:.2}x best-of-grid {best_id} ({best:.0}ns)",
                cell.name
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "Auto exceeded its {AUTO_BUDGET}x budget:\n{}",
        failures.join("\n")
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
