//! Table 2, rows 6–7: the curriculum transitive-closure consistency check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_bench::{curriculum_workload, engine_for, run_cell, Algorithm, Backend};
use xqy_datagen::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("curriculum");
    group.sample_size(10);
    // Larger scales are exercised by the `table2` binary.
    for scale in [Scale::Small] {
        let workload = curriculum_workload(scale);
        for backend in [Backend::SourceLevel, Backend::Algebraic] {
            for algorithm in [Algorithm::Naive, Algorithm::Delta] {
                let id = BenchmarkId::new(
                    format!("{}/{}", backend.name(), algorithm.name()),
                    scale.name(),
                );
                group.bench_with_input(id, &workload, |b, workload| {
                    let mut engine = engine_for(workload);
                    b.iter(|| run_cell(&mut engine, workload, backend, algorithm));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
