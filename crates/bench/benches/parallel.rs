//! Parallel batched fixpoints vs the sequential batched driver.
//!
//! PR 6 froze the store behind a read-only snapshot and sharded the
//! per-seed phases of batched multi-source fixpoints across OS threads —
//! body evaluation, frontier materialization and the per-seed merges on the
//! relational executor, the image folds and result materializations on the
//! source-level driver.  These benches pin the speed-up on the medium
//! Table-2 cells the acceptance criterion tracks (bidder network and
//! curriculum, batched Delta), comparing `threads = 1` (bit-identical to
//! the PR-5 sequential path) against one shard per available core.
//!
//! Run with `CRITERION_JSON=BENCH_parallel.json cargo bench -p xqy_bench
//! --bench parallel` to record the baseline the ROADMAP tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use xqy_bench::{bidder_network, curriculum_workload, engine_for, Backend, Workload};
use xqy_datagen::Scale;
use xqy_ifp::{Bindings, Parallelism, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    let cores = Parallelism::Auto.threads();
    let mut thread_counts = vec![1usize];
    if cores > 1 {
        thread_counts.push(cores);
    }

    for (label, workload) in [
        ("curriculum_medium", curriculum_workload(Scale::Medium)),
        ("bidder_network_medium", bidder_network(Scale::Medium)),
    ] {
        let workload: Workload = workload;
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Delta);
        let seeds = engine
            .run(&workload.seed_query)
            .expect("seed query runs")
            .result;

        for backend in [Backend::Algebraic, Backend::SourceLevel] {
            let tag = match backend {
                Backend::Algebraic => "algebraic",
                _ => "source_level",
            };
            for &threads in &thread_counts {
                let prepared = engine
                    .prepare(&workload.batched_query())
                    .expect("workload query parses")
                    .with_backend(backend)
                    .with_parallelism(if threads <= 1 {
                        Parallelism::Sequential
                    } else {
                        Parallelism::Fixed(threads)
                    });
                let warm = prepared
                    .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                    .unwrap();
                assert!(warm.batched, "per-item bodies must take the batched path");
                group.bench_function(format!("{label}/{tag}/t{threads}"), |b| {
                    b.iter(|| {
                        prepared
                            .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                            .unwrap()
                    })
                });
            }
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
