//! Micro-benchmarks of the two distributivity checks themselves (the
//! compile-time cost of deciding whether µ∆ may replace µ — Figures 5 and 9
//! of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_ifp::algebra::compile_recursion_body;
use xqy_ifp::is_distributivity_safe;
use xqy_ifp::parser::parse_expr;

fn bench(c: &mut Criterion) {
    let bodies = [
        ("q1", "$x/id(./prerequisites/pre_code)"),
        ("q2", "if (count($x/self::a)) then $x/* else ()"),
        ("bidder", xqy_datagen::auction::BODY),
        (
            "union",
            "$x/child::a union $x/descendant::b union $x/following-sibling::c",
        ),
    ];
    let mut group = c.benchmark_group("distributivity_checks");
    for (name, src) in bodies {
        let expr = parse_expr(src).unwrap();
        group.bench_with_input(BenchmarkId::new("syntactic", name), &expr, |b, expr| {
            b.iter(|| is_distributivity_safe(expr, "x", &[]))
        });
        group.bench_with_input(BenchmarkId::new("algebraic", name), &expr, |b, expr| {
            b.iter(|| compile_recursion_body(expr, "x"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
