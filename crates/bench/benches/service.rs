//! Criterion shim over the concurrent query service: a fixed batch of
//! mixed curriculum queries executed by 1 and by N worker threads against
//! one shared [`QueryService`] (warmed plan cache, one published
//! snapshot).  The single-run load generator with percentile latencies is
//! `cargo run --release -p xqy_bench --bin svc`; this bench exists so the
//! service shows up next to the other criterion baselines.
//!
//! Run with `CRITERION_JSON=BENCH_service.json cargo bench -p xqy_bench
//! --bench service` to record the artifact.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, Criterion};
use xqy_datagen::curriculum::{self, CurriculumConfig};
use xqy_datagen::Scale;
use xqy_ifp::Parallelism;
use xqy_service::{QueryService, ServiceConfig};

/// Mixed workload over the small curriculum (100 courses, codes c0…c99).
const QUERIES: &[&str] = &[
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c99'] \
     recurse $x/id(./prerequisites/pre_code)",
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c50'] \
     recurse $x/id(./prerequisites/pre_code)",
    "doc('curriculum.xml')/curriculum/course[@code='c33']/prerequisites/pre_code",
];

const QUERIES_PER_WORKER: usize = 8;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    let cores = Parallelism::Auto.threads();
    let mut worker_counts = vec![1usize];
    if cores > 1 {
        worker_counts.push(cores.min(4));
    }

    let xml = curriculum::generate(&CurriculumConfig::for_scale(Scale::Small));
    for &workers in &worker_counts {
        let service = Arc::new(QueryService::new(ServiceConfig {
            max_concurrent: workers,
            max_queue: workers,
            ..ServiceConfig::default()
        }));
        service
            .load_document_with_ids("curriculum.xml", &xml, &["code"])
            .expect("curriculum loads");
        service.publish().expect("publish succeeds");
        for query in QUERIES {
            service.execute(query).expect("warmup query runs");
        }

        group.bench_function(format!("mixed/t{workers}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let service = Arc::clone(&service);
                        thread::spawn(move || {
                            for i in 0..QUERIES_PER_WORKER {
                                let query = QUERIES[(worker + i) % QUERIES.len()];
                                service.execute(query).expect("load query runs");
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("worker thread finishes");
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
