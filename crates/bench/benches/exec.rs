//! Micro-benchmarks of the algebraic executor's data plane.
//!
//! PR 3 rebuilt the executor around interned, typed `Key` cells and
//! columnar `Arc`-shared tables, and made executors persistent across the
//! per-item Table-2 loop.  These benches pin the costs that refactor
//! targeted:
//!
//! * `join`      — hash join on typed keys (was: one `String` allocation
//!   per probe and per build row);
//! * `distinct`  — duplicate elimination on `Copy` keys (was: a
//!   `Vec<String>` render per row);
//! * `static_cache_hit` — returning a rec-independent table from the
//!   static cache (was: a deep row-by-row clone; now an O(columns)
//!   handle);
//! * `per_item/*` — the end-to-end per-item curriculum loop (one fixpoint
//!   per seed course) with the persistent executors of one prepared query
//!   vs. re-prepared fresh executors per run;
//! * `per_item/*/source_level{,_batched}` — the same Table-2 cells on the
//!   **source-level interpreter** (PR 5's target): the per-item loop over
//!   the rebuilt interpreter data plane, and the batched source-level
//!   driver (one shared fixpoint, distinct-frontier body sharing);
//! * `seq_ops/*` — union / except / set-equality on the node-backed
//!   [`Sequence`](xqy_xdm::Sequence) representation (borrowed id slices
//!   feeding the bitset kernel, no per-item extraction).
//!
//! Run with `CRITERION_JSON=BENCH_exec.json cargo bench -p xqy_bench
//! --bench exec` to record the baseline the ROADMAP tracks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xqy_bench::{
    bidder_network, curriculum_workload, engine_for, seed_bindings, Backend, Workload,
};
use xqy_datagen::Scale;
use xqy_ifp::algebra::{Executor, Key, Operator, Plan, Table};
use xqy_ifp::Strategy;
use xqy_xdm::NodeStore;

/// A single-column table of `n` interned symbols `s<i % cycle>`.
fn sym_table(exec: &mut Executor, n: usize, cycle: usize) -> Table {
    let keys: Vec<Key> = (0..n)
        .map(|i| Key::Sym(exec.interner_mut().intern(&format!("s{}", i % cycle))))
        .collect();
    Table::from_columns(vec!["item".into()], vec![keys])
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec");
    group.sample_size(10);

    // --- join: self-join of 10⁴ symbol rows over the typed-key index.
    {
        let mut store = NodeStore::new();
        let mut exec = Executor::new();
        let input = sym_table(&mut exec, 10_000, 10_000);
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![rec, rec],
        );
        plan.set_root(join);
        group.bench_function("join/10k", |b| {
            b.iter(|| black_box(exec.eval_plan(&mut store, &plan, &input).unwrap().len()))
        });
    }

    // --- distinct: 10⁴ rows, 10× duplication.
    {
        let mut store = NodeStore::new();
        let mut exec = Executor::new();
        let input = sym_table(&mut exec, 10_000, 1_000);
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let distinct = plan.add(Operator::Distinct, vec![rec]);
        plan.set_root(distinct);
        group.bench_function("distinct/10k", |b| {
            b.iter(|| black_box(exec.eval_plan(&mut store, &plan, &input).unwrap().len()))
        });
    }

    // --- static_cache_hit: a fully rec-independent plan re-evaluated by a
    // persistent executor — every call after the first returns shared
    // column handles out of the static cache.
    {
        let workload = curriculum_workload(Scale::Small);
        let mut store = NodeStore::new();
        store
            .parse_document_with_uri(workload.uri, &workload.xml)
            .unwrap();
        let mut plan = Plan::new();
        let docroot = plan.add(Operator::DocRoot(workload.uri.into()), vec![]);
        let scan = plan.add(
            Operator::Step {
                axis: xqy_xdm::Axis::Descendant,
                test: xqy_xdm::NodeTest::Name("course".into()),
            },
            vec![docroot],
        );
        plan.set_root(scan);
        let mut exec = Executor::new();
        let empty = Table::new(vec!["item".into()]);
        exec.eval_plan(&mut store, &plan, &empty).unwrap(); // warm
        group.bench_function("static_cache_hit", |b| {
            b.iter(|| black_box(exec.eval_plan(&mut store, &plan, &empty).unwrap().len()))
        });
    }

    // --- per_item: the end-to-end Table-2 per-item loops on the algebraic
    // back-end — the per-seed µ∆ loop of PR 3 (one fixpoint per seed node,
    // `reused_executor` / `fresh_executors`) against the PR-4 **batched**
    // multi-source fixpoint (all seeds in one run over the (seed, node)
    // relation).  The medium-scale cells are the ones the batching
    // acceptance criterion tracks.
    for (label, workload) in [
        ("curriculum", curriculum_workload(Scale::Small)),
        ("bidder_network", bidder_network(Scale::Small)),
        ("curriculum_medium", curriculum_workload(Scale::Medium)),
        ("bidder_network_medium", bidder_network(Scale::Medium)),
    ] {
        let workload: Workload = workload;
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Delta);
        engine.set_backend(Backend::Algebraic);
        let query = workload.query();
        let bindings = seed_bindings(&mut engine, &workload);
        let seeds = bindings.get("seed").unwrap().clone();
        let prepared = engine.prepare(&query).unwrap();
        prepared.execute(&mut engine, &bindings).unwrap(); // warm the caches
        group.bench_function(format!("per_item/{label}/reused_executor"), |b| {
            b.iter(|| prepared.execute(&mut engine, &bindings).unwrap())
        });
        group.bench_function(format!("per_item/{label}/fresh_executors"), |b| {
            // Re-preparing builds fresh executors: every run re-interns and
            // re-evaluates the rec-independent plan nodes per seed.
            b.iter(|| {
                let p = engine.prepare(&query).unwrap();
                p.execute(&mut engine, &bindings).unwrap()
            })
        });
        // One batched multi-source fixpoint over all seeds, sharing every
        // body scan across the batch.
        let batched = engine.prepare(&workload.batched_query()).unwrap();
        let warm = batched
            .execute_batched(&mut engine, "seed", &seeds, &xqy_ifp::Bindings::new())
            .unwrap();
        assert!(warm.batched, "per-item bodies must take the batched path");
        group.bench_function(format!("per_item/{label}/batched"), |b| {
            b.iter(|| {
                batched
                    .execute_batched(&mut engine, "seed", &seeds, &xqy_ifp::Bindings::new())
                    .unwrap()
            })
        });

        // The same cells on the source-level interpreter: the per-item loop
        // (one interpreted fixpoint per seed) and the batched source-level
        // driver (one shared loop, distinct-frontier body sharing).  These
        // are the Table-2 source-level cells the PR-5 acceptance criterion
        // tracks.
        engine.set_backend(Backend::SourceLevel);
        let src = engine.prepare(&query).unwrap();
        src.execute(&mut engine, &bindings).unwrap();
        group.bench_function(format!("per_item/{label}/source_level"), |b| {
            b.iter(|| src.execute(&mut engine, &bindings).unwrap())
        });
        let src_batched = engine.prepare(&workload.batched_query()).unwrap();
        let warm = src_batched
            .execute_batched(&mut engine, "seed", &seeds, &xqy_ifp::Bindings::new())
            .unwrap();
        assert!(warm.batched, "source-level bodies batch through the driver");
        assert!(warm.outcome.batch_seeds() > 0);
        group.bench_function(format!("per_item/{label}/source_level_batched"), |b| {
            b.iter(|| {
                src_batched
                    .execute_batched(&mut engine, "seed", &seeds, &xqy_ifp::Bindings::new())
                    .unwrap()
            })
        });
    }

    // --- seq_ops: the node-set operations on the node-backed `Sequence`
    // representation — union / except / set-equality over two overlapping
    // 10⁴-node operands, driven exactly as the evaluator drives them
    // (borrowed id slices into the bitset kernel; set_equal entirely on
    // bitmaps).
    {
        use xqy_xdm::{node_except, node_union, NodeStore as Store, Sequence};
        let mut store = Store::new();
        let mut xml = String::from("<r>");
        for _ in 0..20_000 {
            xml.push_str("<c/>");
        }
        xml.push_str("</r>");
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let all = store.children(root);
        let a = Sequence::from_nodes(all.iter().copied().take(10_000));
        let b = Sequence::from_nodes(all.iter().copied().skip(5_000).take(10_000));
        group.bench_function("seq_ops/union/10k", |bch| {
            bch.iter(|| {
                black_box(node_union(&store, a.node_ids().unwrap(), b.node_ids().unwrap()).len())
            })
        });
        group.bench_function("seq_ops/except/10k", |bch| {
            bch.iter(|| {
                black_box(node_except(&store, a.node_ids().unwrap(), b.node_ids().unwrap()).len())
            })
        });
        group.bench_function("seq_ops/set_equal/10k", |bch| {
            bch.iter(|| black_box(a.set_equal(&b)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
