//! String-plane micro-benchmarks (PR 8).
//!
//! The zero-copy text plane interns every text-shaped payload into a
//! store-owned pool, atomizes to shared handles instead of rendered
//! `String`s, memoizes element concatenations, and prefilters `id()`
//! probes on pool membership.  These benches pin the three string-heavy
//! shapes that plane accelerates:
//!
//! * **atomize_probe** — a predicate atomizing every `pre_code` text node
//!   and comparing it against a literal (the untyped fast path);
//! * **general_join** — a general comparison joining course codes against
//!   the full multiset of prerequisite codes (string × string `=` at
//!   quadratic candidate scale);
//! * **id_storm** — resolving every prerequisite through the ID index
//!   (pool-membership prefilter + symbol-keyed probe memo).
//!
//! Run with `CRITERION_JSON=BENCH_strings.json cargo bench -p xqy_bench
//! --bench strings` to record the baseline the ROADMAP tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use xqy_bench::{curriculum_workload, engine_for};
use xqy_datagen::Scale;
use xqy_ifp::Bindings;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("strings");
    group.sample_size(10);

    for scale in [Scale::Small, Scale::Medium] {
        let workload = curriculum_workload(scale);
        let mut engine = engine_for(&workload);
        let uri = workload.uri;

        let probe = format!("count(doc('{uri}')//pre_code[. = 'c10'])");
        let join = format!("count(doc('{uri}')/curriculum/course[@code = doc('{uri}')//pre_code])");
        let storm = format!("count(doc('{uri}')/curriculum/course/id(./prerequisites/pre_code))");

        for (tag, query) in [
            ("atomize_probe", &probe),
            ("general_join", &join),
            ("id_storm", &storm),
        ] {
            let prepared = engine.prepare(query).expect("query parses");
            let warm = prepared
                .execute(&mut engine, &Bindings::new())
                .expect("query runs");
            assert_eq!(warm.result.len(), 1, "count() yields a single atomic");
            group.bench_function(format!("{tag}/{}", scale.name()), |b| {
                b.iter(|| prepared.execute(&mut engine, &Bindings::new()).unwrap())
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
