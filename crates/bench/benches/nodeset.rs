//! Micro-benchmark: the bitset [`NodeSet`] kernel vs. the pre-NodeSet
//! `Vec`/`HashSet` node-set operations (`xqy_xdm::ops::baseline`), over the
//! operation mix of one Delta iteration (`except` + `union` + equality) at
//! 10³–10⁶ nodes.
//!
//! Three shapes per operation, so the numbers answer distinct questions:
//!
//! * `*/baseline`  — the old slice implementation (sort / `HashSet`), from
//!   raw slices: what the engine used to pay.
//! * `*/slice`     — the shipped `xqy_xdm::ops` slice API, from raw slices
//!   (includes `NodeSet` construction + document-order materialization):
//!   what the general evaluator pays now.
//! * `*/prebuilt`  — the word-parallel op alone on already-built sets: what
//!   the fixpoint drivers pay per iteration, since they keep their
//!   accumulators as persistent `NodeSet`s.
//!
//! Run with `CRITERION_JSON=BENCH_nodeset.json cargo bench -p xqy_bench
//! --bench nodeset` to record the baseline the ROADMAP tracks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_xdm::ops::{self, baseline};
use xqy_xdm::{NodeId, NodeSet, NodeStore};

/// A store with one flat document of `n` element children, returning the
/// children split into two half-overlapping operand vectors.
fn operands(n: usize) -> (NodeStore, Vec<NodeId>, Vec<NodeId>) {
    let mut xml = String::with_capacity(n * 4 + 16);
    xml.push_str("<r>");
    for _ in 0..n {
        xml.push_str("<c/>");
    }
    xml.push_str("</r>");
    let mut store = NodeStore::new();
    let doc = store.parse_document(&xml).unwrap();
    let root = store.document_element(doc).unwrap();
    let kids = store.children(root);
    // a: first 3/4 of the nodes; b: last half — 50% overlap at every size.
    let a = kids[..n * 3 / 4].to_vec();
    let b = kids[n / 2..].to_vec();
    (store, a, b)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nodeset");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let (store, a, b) = operands(n);

        group.bench_with_input(BenchmarkId::new("union/baseline", n), &n, |bench, _| {
            bench.iter(|| baseline::node_union(&store, black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("union/slice", n), &n, |bench, _| {
            bench.iter(|| ops::node_union(&store, black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("union/prebuilt", n), &n, |bench, _| {
            let sa = NodeSet::from_nodes(a.iter().copied());
            let sb = NodeSet::from_nodes(b.iter().copied());
            bench.iter(|| black_box(&sa).union(black_box(&sb)))
        });

        group.bench_with_input(BenchmarkId::new("except/baseline", n), &n, |bench, _| {
            bench.iter(|| baseline::node_except(&store, black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("except/slice", n), &n, |bench, _| {
            bench.iter(|| ops::node_except(&store, black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("except/prebuilt", n), &n, |bench, _| {
            let sa = NodeSet::from_nodes(a.iter().copied());
            let sb = NodeSet::from_nodes(b.iter().copied());
            bench.iter(|| black_box(&sa).except(black_box(&sb)))
        });

        group.bench_with_input(BenchmarkId::new("set_equal/baseline", n), &n, |bench, _| {
            bench.iter(|| baseline::set_equal(&store, black_box(&a), black_box(&a)))
        });
        group.bench_with_input(BenchmarkId::new("set_equal/slice", n), &n, |bench, _| {
            bench.iter(|| ops::set_equal(black_box(&a), black_box(&a)))
        });
        group.bench_with_input(BenchmarkId::new("set_equal/prebuilt", n), &n, |bench, _| {
            let sa = NodeSet::from_nodes(a.iter().copied());
            let sa2 = sa.clone();
            bench.iter(|| black_box(&sa) == black_box(&sa2))
        });

        // The full Delta-iteration mix, end to end, including the NodeSet
        // construction from the body's output slice — the shape
        // `xqy_eval::fixpoint::delta` actually executes.
        group.bench_with_input(
            BenchmarkId::new("delta_iter/baseline", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let delta = baseline::node_except(&store, black_box(&b), black_box(&a));
                    let res = baseline::node_union(&store, &delta, black_box(&a));
                    black_box((delta.is_empty(), res.len()))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("delta_iter/nodeset", n), &n, |bench, _| {
            let res = NodeSet::from_nodes(a.iter().copied());
            bench.iter(|| {
                let mut delta = NodeSet::from_nodes(black_box(&b).iter().copied());
                delta.except_in_place(&res);
                let merged = res.union(&delta);
                black_box((delta.is_empty(), merged.len()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
