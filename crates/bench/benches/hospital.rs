//! Table 2, row 8: the hospital hereditary-disease workload (vertical
//! recursion into ancestry subtrees of depth ≤ 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqy_bench::{engine_for, hospital_workload, run_cell, Algorithm, Backend};
use xqy_datagen::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hospital");
    group.sample_size(10);
    let workload = hospital_workload(Scale::Small);
    for backend in [Backend::SourceLevel, Backend::Algebraic] {
        for algorithm in [Algorithm::Naive, Algorithm::Delta] {
            let id = BenchmarkId::new(backend.name(), algorithm.name());
            group.bench_with_input(id, &workload, |b, workload| {
                let mut engine = engine_for(workload);
                b.iter(|| run_cell(&mut engine, workload, backend, algorithm));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
