//! Micro-benchmark: prepare-once-execute-many vs. re-preparing per run.
//!
//! The prepared-query API's promise is that parsing, distributivity
//! analysis and algebraic plan compilation are *query-sized* costs paid
//! once, while execution repeats.  Three shapes per back-end quantify the
//! amortization on the per-item curriculum workload (one fixpoint per seed
//! course — the shape that used to re-parse and re-compile the recursion
//! body per seed):
//!
//! * `*/rerun`   — prepare + execute per iteration: parse + analyse +
//!   compile + execute every time (the old `Engine::run` cost per call).
//! * `*/execute` — one `PreparedQuery::execute` per iteration against a
//!   prepared artifact (what the prepared API pays per call).
//! * `prepare`   — the one-off preparation cost itself, for scale.
//! * `per_seed_reprepare` — one prepare + execute per *seed node* (the
//!   shape of the removed `run_algebraic_fixpoint_seeded` loop, which
//!   re-parsed and re-compiled the recursion body for every seed) vs. the
//!   single prepared per-item query.
//!
//! Run with `CRITERION_JSON=BENCH_prepared.json cargo bench -p xqy_bench
//! --bench prepared` to record the baseline the ROADMAP tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use xqy_bench::{curriculum_workload, engine_for, seed_bindings, Backend};
use xqy_datagen::Scale;
use xqy_ifp::{Bindings, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared");
    group.sample_size(10);

    let workload = curriculum_workload(Scale::Small);
    for backend in [Backend::SourceLevel, Backend::Algebraic] {
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Delta);
        engine.set_backend(backend);
        let query = workload.query();
        let bindings = seed_bindings(&mut engine, &workload);
        let prepared = engine.prepare(&query).unwrap();

        group.bench_function(format!("curriculum/{}/prepare", backend.name()), |b| {
            b.iter(|| engine.prepare(&query).unwrap())
        });
        group.bench_function(format!("curriculum/{}/rerun", backend.name()), |b| {
            // Prepare + execute per iteration: the pre-prepared-API cost.
            b.iter(|| {
                let p = engine.prepare(&query).unwrap();
                p.execute(&mut engine, &bindings).unwrap()
            })
        });
        group.bench_function(format!("curriculum/{}/execute", backend.name()), |b| {
            b.iter(|| prepared.execute(&mut engine, &bindings).unwrap())
        });
    }

    // The removed side door's shape: one single-seed fixpoint per seed
    // node, re-prepared (re-parsed, re-analysed, re-compiled) per seed —
    // against the same per-seed loop driven by one prepared query.
    {
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Delta);
        engine.set_backend(Backend::Algebraic);
        let single = format!("with $x seeded by $seed recurse {}", workload.body);
        let seeds = engine.run(&workload.seed_query).unwrap().result;
        let per_seed: Vec<Bindings> = seeds
            .nodes()
            .iter()
            .map(|&n| Bindings::new().with("seed", xqy_ifp::xdm::Sequence::from_nodes(vec![n])))
            .collect();
        group.bench_function("curriculum/algebraic/per_seed_reprepare", |b| {
            b.iter(|| {
                for bindings in &per_seed {
                    let p = engine.prepare(&single).unwrap();
                    p.execute(&mut engine, bindings).unwrap();
                }
            })
        });
        let prepared_single = engine.prepare(&single).unwrap();
        group.bench_function("curriculum/algebraic/per_seed_prepared", |b| {
            b.iter(|| {
                for bindings in &per_seed {
                    prepared_single.execute(&mut engine, bindings).unwrap();
                }
            })
        });
    }

    // A tiny single-fixpoint query, where the fixed preparation overhead is
    // largest relative to the execution itself.
    let mut engine = engine_for(&workload);
    let q1 = format!(
        "with $x seeded by $seed recurse {}",
        xqy_datagen::curriculum::BODY
    );
    let seed = engine
        .run("doc('curriculum.xml')/curriculum/course[@code='c1']")
        .unwrap()
        .result;
    let bindings = Bindings::new().with("seed", seed);
    let prepared = engine.prepare(&q1).unwrap();
    group.bench_function("q1/rerun", |b| {
        b.iter(|| {
            let p = engine.prepare(&q1).unwrap();
            p.execute(&mut engine, &bindings).unwrap()
        })
    });
    group.bench_function("q1/execute", |b| {
        b.iter(|| prepared.execute(&mut engine, &bindings).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
