//! Curriculum workload: generate a larger curriculum, compare Naïve and
//! Delta, and run the paper's consistency check (courses that are among
//! their own prerequisites).
//!
//! ```bash
//! cargo run --release --example curriculum_closure
//! ```

use std::time::Instant;

use xqy_datagen::{curriculum, Scale};
use xqy_ifp::{Engine, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = curriculum::CurriculumConfig::for_scale(Scale::Medium);
    let xml = curriculum::generate(&config);
    println!(
        "generated curriculum with {} courses ({} bytes of XML)",
        config.courses,
        xml.len()
    );

    let query = curriculum::prerequisites_query("c500");
    for strategy in [Strategy::Naive, Strategy::Delta] {
        let mut engine = Engine::new();
        engine.load_document_with_ids(curriculum::DOC_URI, &xml, &["code"])?;
        engine.set_strategy(strategy);
        let start = Instant::now();
        let outcome = engine.run(&query)?;
        let elapsed = start.elapsed();
        let stats = &outcome.fixpoints[0];
        println!(
            "{:<6} -> {:>4} prerequisites, {:>3} iterations, {:>7} nodes fed back, {:?}",
            strategy.name(),
            outcome.result.len(),
            stats.iterations,
            stats.nodes_fed_back,
            elapsed
        );
    }

    // Consistency check (xlinkit Rule 5): courses among their own prerequisites.
    let mut engine = Engine::new();
    engine.load_document_with_ids(curriculum::DOC_URI, &xml, &["code"])?;
    let outcome = engine.run(&curriculum::consistency_check_query())?;
    println!(
        "consistency check: {} course(s) are among their own prerequisites",
        outcome.result.len()
    );
    Ok(())
}
