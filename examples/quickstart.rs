//! Quickstart: the paper's running example (prerequisites of course "c1"),
//! through the prepared-query API — parse/analyse/compile once, execute
//! many times with an externally bound seed.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use xqy_ifp::{Bindings, Engine, Strategy};

const CURRICULUM: &str = r#"<curriculum>
    <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
    <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
    <course code="c3"><prerequisites/></course>
    <course code="c4"><prerequisites/></course>
</curriculum>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    // `code` is declared as an ID attribute in the paper's DTD (Figure 1).
    engine.load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])?;
    engine.set_strategy(Strategy::Auto);

    // Query Q1 of the paper, with the seed left as the external variable
    // `$seed`: the distributivity analysis (and, inside the algebraic
    // subset, plan compilation) runs once, here.
    let prepared =
        engine.prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")?;
    for report in &prepared.distributivity() {
        println!(
            "distributivity: syntactic={} (rule {}), algebraic={:?}",
            report.syntactic, report.syntactic_rule, report.algebraic
        );
    }

    // Execute the prepared artifact once per seed course — no re-parsing,
    // no re-analysis, no re-compilation.
    for code in ["c1", "c2", "c3"] {
        let seed = engine
            .run(&format!(
                "doc('curriculum.xml')/curriculum/course[@code='{code}']"
            ))?
            .result;
        let outcome = prepared.execute(&mut engine, &Bindings::new().with("seed", seed))?;
        println!();
        println!(
            "prerequisites of {code} ({} courses): {}",
            outcome.result.len(),
            engine.display(&outcome.result)
        );
        for (plan, stats) in outcome.occurrences.iter().zip(&outcome.fixpoints) {
            println!(
                "fixpoint ${}   : {} on the {} back-end, {} iterations, {} nodes fed back",
                plan.variable,
                plan.strategy.name(),
                plan.backend.name(),
                stats.iterations,
                stats.nodes_fed_back
            );
        }
    }
    Ok(())
}
