//! Quickstart: the paper's running example (prerequisites of course "c1").
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use xqy_ifp::{Engine, Strategy};

const CURRICULUM: &str = r#"<curriculum>
    <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
    <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
    <course code="c3"><prerequisites/></course>
    <course code="c4"><prerequisites/></course>
</curriculum>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    // `code` is declared as an ID attribute in the paper's DTD (Figure 1).
    engine.load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])?;
    engine.set_strategy(Strategy::Auto);

    // Query Q1 of the paper: all direct or indirect prerequisites of "c1".
    let outcome = engine.run(
        "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1']
         recurse $x/id(./prerequisites/pre_code)",
    )?;

    println!("result ({} courses):", outcome.result.len());
    println!("{}", engine.display(&outcome.result));
    println!();
    println!("strategy used : {:?}", outcome.strategy_used);
    for report in &outcome.distributivity {
        println!(
            "distributivity: syntactic={} (rule {}), algebraic={:?}",
            report.syntactic, report.syntactic_rule, report.algebraic
        );
    }
    for stats in &outcome.fixpoints {
        println!(
            "fixpoint      : {} iterations, {} nodes fed back",
            stats.iterations, stats.nodes_fed_back
        );
    }
    Ok(())
}
