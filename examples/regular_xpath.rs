//! Regular XPath via the IFP form: transitive closures of location steps
//! (`e+` and `e*`), evaluated with algorithm Delta.
//!
//! ```bash
//! cargo run --example regular_xpath
//! ```

use xqy_ifp::closure::{reflexive_transitive_closure, transitive_closure};
use xqy_ifp::parser::ast::QueryModule;
use xqy_ifp::Engine;

const ORG: &str = r#"<org>
  <unit name="root">
    <unit name="engineering">
      <unit name="storage"/>
      <unit name="query-processing">
        <unit name="optimizer"/>
      </unit>
    </unit>
    <unit name="sales"/>
  </unit>
</org>"#;

fn run(engine: &mut Engine, expr: xqy_ifp::parser::Expr) -> Vec<String> {
    let module = QueryModule {
        functions: vec![],
        variables: vec![],
        body: expr,
    };
    let outcome = engine.run_module(&module).expect("query runs");
    outcome
        .result
        .nodes()
        .iter()
        .map(|&n| {
            engine
                .store()
                .attribute_value(n, "name")
                .unwrap_or("?")
                .to_string()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    engine.load_document("org.xml", ORG)?;

    // (child::unit)+ from the root unit: every unit strictly below it.
    let plus = transitive_closure("doc('org.xml')/org/unit", "child::unit")?;
    println!("child::unit+  -> {:?}", run(&mut engine, plus));

    // (child::unit)* — the reflexive closure additionally keeps the seed.
    let star = reflexive_transitive_closure("doc('org.xml')/org/unit", "child::unit")?;
    println!("child::unit*  -> {:?}", run(&mut engine, star));

    // Horizontal recursion: following-sibling closure of the first child.
    let siblings =
        transitive_closure("doc('org.xml')/org/unit/unit[1]", "following-sibling::unit")?;
    println!("sibling+      -> {:?}", run(&mut engine, siblings));

    // Steps that violate the Regular XPath restrictions are rejected.
    let err = transitive_closure(".", "child::unit[position() = last()]").unwrap_err();
    println!("rejected step : {err}");
    Ok(())
}
