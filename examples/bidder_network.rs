//! XMark-style bidder network (Figure 10 of the paper): for a person,
//! recursively connect sellers to the bidders of their auctions, comparing
//! the Naïve and Delta algorithms on both back-ends.
//!
//! ```bash
//! cargo run --release --example bidder_network
//! ```

use std::time::Instant;

use xqy_datagen::{auction, Scale};
use xqy_ifp::algebra::MuStrategy;
use xqy_ifp::{Engine, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = auction::AuctionConfig::for_scale(Scale::Small);
    let xml = auction::generate(&config);
    println!(
        "generated auction site: {} persons, {} auctions",
        config.persons, config.auctions
    );

    let query = auction::bidder_network_query("p0");

    // Source-level engine (the paper's "Saxon" role).
    for strategy in [Strategy::Naive, Strategy::Delta] {
        let mut engine = Engine::new();
        engine.load_document(auction::DOC_URI, &xml)?;
        engine.set_strategy(strategy);
        let start = Instant::now();
        let outcome = engine.run(&query)?;
        let stats = &outcome.fixpoints[0];
        println!(
            "evaluator {:<6} -> network of {:>4} persons, depth {:>2}, {:>6} nodes fed back, {:?}",
            strategy.name(),
            outcome.result.len(),
            stats.iterations,
            stats.nodes_fed_back,
            start.elapsed()
        );
    }

    // Relational back-end (the paper's "MonetDB/XQuery" role): µ vs µ∆.
    let mut engine = Engine::new();
    engine.load_document(auction::DOC_URI, &xml)?;
    let seed = format!("doc('{}')/site/people/person[@id='p0']", auction::DOC_URI);
    for strategy in [MuStrategy::Mu, MuStrategy::MuDelta] {
        let start = Instant::now();
        let (nodes, stats) = engine.run_algebraic_fixpoint(&seed, auction::BODY, "x", strategy)?;
        println!(
            "algebra   {:<8} -> network of {:>4} persons, depth {:>2}, {:>6} rows fed back, {:?}",
            strategy.name(),
            nodes.len(),
            stats.iterations,
            stats.rows_fed_back,
            start.elapsed()
        );
    }
    Ok(())
}
