//! XMark-style bidder network (Figure 10 of the paper): for a person,
//! recursively connect sellers to the bidders of their auctions, comparing
//! the Naïve and Delta algorithms on both back-ends.
//!
//! ```bash
//! cargo run --release --example bidder_network
//! ```

use std::time::Instant;

use xqy_datagen::{auction, Scale};
use xqy_ifp::{Backend, Bindings, Engine, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = auction::AuctionConfig::for_scale(Scale::Small);
    let xml = auction::generate(&config);
    println!(
        "generated auction site: {} persons, {} auctions",
        config.persons, config.auctions
    );

    let query = auction::bidder_network_query("p0");

    // Source-level engine (the paper's "Saxon" role).
    for strategy in [Strategy::Naive, Strategy::Delta] {
        let mut engine = Engine::new();
        engine.load_document(auction::DOC_URI, &xml)?;
        engine.set_strategy(strategy);
        let start = Instant::now();
        let outcome = engine.run(&query)?;
        let stats = &outcome.fixpoints[0];
        println!(
            "evaluator {:<6} -> network of {:>4} persons, depth {:>2}, {:>6} nodes fed back, {:?}",
            strategy.name(),
            outcome.result.len(),
            stats.iterations,
            stats.nodes_fed_back,
            start.elapsed()
        );
    }

    // Relational back-end (the paper's "MonetDB/XQuery" role): µ vs µ∆.
    // The recursion body is compiled to an algebraic plan once, at prepare
    // time; both runs (and any further seeds) reuse it.
    let mut engine = Engine::new();
    engine.load_document(auction::DOC_URI, &xml)?;
    engine.set_backend(Backend::Algebraic);
    let seed = engine
        .run(&format!(
            "doc('{}')/site/people/person[@id='p0']",
            auction::DOC_URI
        ))?
        .result;
    let bindings = Bindings::new().with("seed", seed);
    for strategy in [Strategy::Naive, Strategy::Delta] {
        engine.set_strategy(strategy);
        let prepared = engine.prepare(&format!(
            "with $x seeded by $seed recurse {}",
            auction::BODY
        ))?;
        let start = Instant::now();
        let outcome = prepared.execute(&mut engine, &bindings)?;
        let stats = &outcome.fixpoints[0];
        println!(
            "algebra   {:<8} -> network of {:>4} persons, depth {:>2}, {:>6} rows fed back, {:?}",
            if strategy == Strategy::Naive {
                "mu"
            } else {
                "mu-delta"
            },
            outcome.result.len(),
            stats.iterations,
            stats.nodes_fed_back,
            start.elapsed()
        );
    }
    Ok(())
}
