//! Distributivity analysis walkthrough: run the syntactic `ds_$x(·)` rules
//! (Figure 5) and the algebraic ∪ push-up check (Section 4) over a set of
//! recursion bodies, including the paper's Q1 and Q2.
//!
//! ```bash
//! cargo run --example distributivity_report
//! ```

use xqy_ifp::algebra::compile_recursion_body;
use xqy_ifp::parser::parse_expr;
use xqy_ifp::{distributivity_hint, is_distributivity_safe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bodies = [
        ("Q1 (curriculum closure)", "$x/id(./prerequisites/pre_code)"),
        (
            "Q2 (Example 2.4)",
            "if (count($x/self::a)) then $x/* else ()",
        ),
        ("XPath step", "$x/descendant::person/@id"),
        ("first item", "$x[1]"),
        ("whole-sequence count", "count($x) >= 1"),
        ("node constructor", "<wrap>{ $x }</wrap>"),
        ("union of steps", "$x/child::a union $x/descendant::b"),
        (
            "difference with fixed rhs",
            "$x/* except doc('d.xml')//blocked",
        ),
    ];

    println!(
        "{:<28} {:>10} {:>12}  notes",
        "body", "syntactic", "algebraic"
    );
    println!("{}", "-".repeat(72));
    for (name, src) in bodies {
        let expr = parse_expr(src)?;
        let syntactic = is_distributivity_safe(&expr, "x", &[]);
        let algebraic = compile_recursion_body(&expr, "x");
        let (alg, note) = match &algebraic {
            Ok(c) if c.distributivity.distributive => ("yes".to_string(), String::new()),
            Ok(c) => (
                "no".to_string(),
                format!(
                    "blocked at {}",
                    c.distributivity.blocked_by.clone().unwrap_or_default()
                ),
            ),
            Err(e) => ("n/a".to_string(), format!("{e}")),
        };
        println!(
            "{:<28} {:>10} {:>12}  {}",
            name,
            if syntactic.safe { "yes" } else { "no" },
            alg,
            if note.is_empty() {
                format!("rule {}", syntactic.rule)
            } else {
                note
            }
        );
    }

    // The distributivity hint of Section 3.2: count($x) >= 1 is distributive
    // but not derivable; its hint form is.
    let original = parse_expr("count($x) >= 1")?;
    let hinted = distributivity_hint(&original, "x", "y");
    println!();
    println!(
        "hint rewrite: count($x) >= 1  ~~>  {}",
        xqy_ifp::parser::pretty::print_expr(&hinted)
    );
    println!(
        "  derivable after the rewrite: {}",
        is_distributivity_safe(&hinted, "x", &[]).safe
    );
    Ok(())
}
