//! The source-level Naïve→Delta rewrite (what the paper did for Saxon) is
//! semantics-preserving on distributive bodies and equivalent to the native
//! IFP operator.

use xqy_datagen::{curriculum, hospital, Scale};
use xqy_ifp::parser::parse_query;
use xqy_ifp::{rewrite_fixpoints_to_functions, Engine, RewriteStyle, Strategy};

fn curriculum_engine() -> Engine {
    let config = curriculum::CurriculumConfig::for_scale(Scale::Small);
    let xml = curriculum::generate(&config);
    let mut engine = Engine::new();
    engine
        .load_document_with_ids(curriculum::DOC_URI, &xml, &["code"])
        .unwrap();
    engine
}

#[test]
fn rewritten_curriculum_query_matches_native_ifp() {
    let query = curriculum::prerequisites_query("c42");
    let module = parse_query(&query).unwrap();

    let mut engine = curriculum_engine();
    let native = engine.run(&query).unwrap();

    for style in [RewriteStyle::Naive, RewriteStyle::Delta] {
        let rewritten = rewrite_fixpoints_to_functions(&module, style);
        let mut engine2 = curriculum_engine();
        let lowered = engine2.run_module(&rewritten).unwrap();
        assert_eq!(
            native.result.nodes().len(),
            lowered.result.nodes().len(),
            "style {:?}",
            style
        );
    }
}

#[test]
fn rewritten_hospital_query_matches_native_ifp() {
    let config = hospital::HospitalConfig {
        patients: 400,
        max_depth: 5,
        disease_percent: 25,
        seed: 17,
    };
    let xml = hospital::generate(&config);
    let query = hospital::ancestors_query("pt350");
    let module = parse_query(&query).unwrap();

    let mut engine = Engine::new();
    engine.load_document(hospital::DOC_URI, &xml).unwrap();
    let native = engine.run(&query).unwrap();

    let rewritten = rewrite_fixpoints_to_functions(&module, RewriteStyle::Delta);
    let mut engine2 = Engine::new();
    engine2.load_document(hospital::DOC_URI, &xml).unwrap();
    let lowered = engine2.run_module(&rewritten).unwrap();
    assert_eq!(native.result.nodes(), lowered.result.nodes());
}

#[test]
fn naive_and_delta_strategies_agree_on_distributive_workloads() {
    let query = curriculum::prerequisites_query("c77");
    let mut naive_engine = curriculum_engine();
    naive_engine.set_strategy(Strategy::Naive);
    let naive = naive_engine.run(&query).unwrap();

    let mut delta_engine = curriculum_engine();
    delta_engine.set_strategy(Strategy::Delta);
    let delta = delta_engine.run(&query).unwrap();

    assert_eq!(naive.result.nodes().len(), delta.result.nodes().len());
    assert!(delta.fixpoints[0].nodes_fed_back <= naive.fixpoints[0].nodes_fed_back);
}

#[test]
fn rewrite_is_printable_and_reparsable_for_every_workload_query() {
    for query in [
        curriculum::prerequisites_query("c1"),
        hospital::hereditary_query(),
        xqy_datagen::play::dialogs_query(),
        xqy_datagen::auction::bidder_network_query("p0"),
    ] {
        let module = parse_query(&query).unwrap();
        for style in [RewriteStyle::Naive, RewriteStyle::Delta] {
            let rewritten = rewrite_fixpoints_to_functions(&module, style);
            let printed = xqy_ifp::parser::pretty::print_module(&rewritten);
            let reparsed = parse_query(&printed).expect("rewritten query must re-parse");
            assert_eq!(reparsed.functions.len(), rewritten.functions.len());
        }
    }
}
