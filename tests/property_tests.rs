//! Property-based tests over the core invariants of the reproduction:
//!
//! * the node-set operations behave like set algebra under `fs:ddo`;
//! * Naïve and Delta agree on distributive bodies for *arbitrary* generated
//!   reference graphs (Theorem 3.2 exercised empirically);
//! * the syntactic distributivity judgement is sound with respect to the
//!   definition of distributivity (Definition 3.1) on generated inputs;
//! * the relational back-end agrees with the source-level evaluator.

use proptest::prelude::*;

use xqy_ifp::eval::{Evaluator, FixpointStrategy};
use xqy_ifp::xdm::{ddo, is_subset, node_except, node_union, NodeStore};
use xqy_ifp::{Backend, Engine, Strategy};

/// Build a curriculum-like document from an arbitrary edge list over
/// `courses` nodes.
fn curriculum_from_edges(courses: usize, edges: &[(usize, usize)]) -> String {
    let mut out = String::from("<curriculum>");
    for i in 0..courses {
        out.push_str(&format!("<course code=\"c{i}\"><prerequisites>"));
        for (from, to) in edges {
            if *from == i {
                out.push_str(&format!("<pre_code>c{}</pre_code>", to % courses));
            }
        }
        out.push_str("</prerequisites></course>");
    }
    out.push_str("</curriculum>");
    out
}

fn edge_strategy(courses: usize) -> impl proptest::strategy::Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..courses, 0..courses), 0..courses * 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Naïve and Delta compute the same IFP for the (distributive)
    /// transitive-closure body on arbitrary reference graphs, including
    /// graphs with cycles and self-loops.
    #[test]
    fn naive_equals_delta_on_arbitrary_reference_graphs(
        courses in 2usize..12,
        edges in edge_strategy(11),
        seed_course in 0usize..12,
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let seed_course = seed_course % courses;
        let query = format!(
            "with $x seeded by doc('c.xml')/curriculum/course[@code='c{seed_course}'] \
             recurse $x/id(./prerequisites/pre_code)"
        );
        let run = |strategy: FixpointStrategy| {
            let mut store = NodeStore::new();
            let doc = store.parse_document_with_uri("c.xml", &xml).unwrap();
            store.register_id_attribute(doc, "code");
            let mut evaluator = Evaluator::new(&mut store);
            evaluator.set_fixpoint_strategy(strategy);
            let result = evaluator.eval_query_str(&query).unwrap();
            let mut codes: Vec<String> = result
                .nodes()
                .iter()
                .map(|&n| store.attribute_value(n, "code").unwrap().to_string())
                .collect();
            codes.sort();
            codes
        };
        prop_assert_eq!(run(FixpointStrategy::Naive), run(FixpointStrategy::Delta));
    }

    /// The relational µ / µ∆ operators agree with each other and with the
    /// source-level engine on arbitrary reference graphs.
    #[test]
    fn algebraic_and_source_level_backends_agree(
        courses in 2usize..10,
        edges in edge_strategy(9),
        seed_course in 0usize..10,
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let seed_course = seed_course % courses;
        let mut engine = Engine::new();
        engine.load_document_with_ids("c.xml", &xml, &["code"]).unwrap();
        engine.set_strategy(Strategy::Delta);
        let query = format!(
            "with $x seeded by doc('c.xml')/curriculum/course[@code='c{seed_course}'] \
             recurse $x/id(./prerequisites/pre_code)"
        );
        let reference = engine.run(&query).unwrap();
        // The same query on the relational back-end, prepared once per
        // algorithm: µ (Naïve) and µ∆ (Delta) drive the compiled plan.
        engine.set_backend(Backend::Algebraic);
        engine.set_strategy(Strategy::Naive);
        let mu = engine.run(&query).unwrap();
        engine.set_strategy(Strategy::Delta);
        let mud = engine.run(&query).unwrap();
        prop_assert_eq!(mu.result.len(), reference.result.len());
        prop_assert_eq!(mud.result.len(), reference.result.len());
    }

    /// Set-algebra laws of the node-set operations under document order.
    #[test]
    fn node_set_operations_behave_like_sets(
        children in 1usize..30,
        picks_a in proptest::collection::vec(0usize..30, 0..40),
        picks_b in proptest::collection::vec(0usize..30, 0..40),
    ) {
        let mut xml = String::from("<r>");
        for i in 0..children {
            xml.push_str(&format!("<c n=\"{i}\"/>"));
        }
        xml.push_str("</r>");
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let all = store.children(root);
        let a: Vec<_> = picks_a.iter().map(|&i| all[i % all.len()]).collect();
        let b: Vec<_> = picks_b.iter().map(|&i| all[i % all.len()]).collect();

        // Union is commutative and idempotent; ddo is idempotent.
        let ab = node_union(&store, &a, &b);
        let ba = node_union(&store, &b, &a);
        prop_assert_eq!(&ab, &ba);
        let ddo_a = ddo(&store, &a);
        prop_assert_eq!(ddo(&store, &ddo_a), ddo_a.clone());
        prop_assert_eq!(node_union(&store, &a, &a), ddo_a);

        // a \ b is disjoint from b and together with (a ∩ b) covers ddo(a).
        let diff = node_except(&store, &a, &b);
        prop_assert!(diff.iter().all(|n| !b.contains(n)));
        prop_assert!(is_subset(&diff, &a));
        // (a \ b) ∪ b ⊇ a.
        let rejoined = node_union(&store, &diff, &b);
        prop_assert!(is_subset(&ddo(&store, &a), &rejoined));
    }

    /// Soundness of the syntactic judgement (Definition 3.1): whenever
    /// `ds_$x(e)` holds for a generated path body, evaluating `e` over a
    /// sequence equals the union of evaluating it over the singletons.
    #[test]
    fn syntactic_judgement_is_sound_for_step_bodies(
        courses in 2usize..8,
        edges in edge_strategy(7),
        step in prop_oneof![
            Just("$x/id(./prerequisites/pre_code)"),
            Just("$x/prerequisites/pre_code"),
            Just("$x/*"),
            Just("$x/self::course"),
            Just("$x/prerequisites union $x/self::course"),
        ],
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let body = xqy_ifp::parser::parse_expr(step).unwrap();
        let judgement = xqy_ifp::is_distributivity_safe(&body, "x", &[]);
        prop_assert!(judgement.safe);

        let mut store = NodeStore::new();
        let doc = store.parse_document_with_uri("c.xml", &xml).unwrap();
        store.register_id_attribute(doc, "code");
        let mut evaluator = Evaluator::new(&mut store);
        // X = all courses; e(X) vs union over singletons.
        let whole = evaluator
            .eval_query_str(&format!(
                "let $x := doc('c.xml')/curriculum/course return {step}"
            ))
            .unwrap();
        let split = evaluator
            .eval_query_str(&format!(
                "for $y in doc('c.xml')/curriculum/course return \
                 (let $x := $y return {step})"
            ))
            .unwrap();
        let mut w = whole.nodes();
        let mut s = split.nodes();
        store.sort_distinct(&mut w);
        store.sort_distinct(&mut s);
        prop_assert_eq!(w, s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-backend equivalence on *random* recursion bodies drawn from
    /// the algebraic compiler's subset: for arbitrary reference graphs and
    /// arbitrary seeds, the pre-compiled µ/µ∆ plans on the relational
    /// executor return exactly the node set the source-level interpreter
    /// computes.  `Strategy::Auto` decides the algorithm per occurrence,
    /// so non-distributive bodies (difference, count-conditionals) run
    /// Naïve on both back-ends and distributive ones run Delta on both.
    #[test]
    fn random_bodies_agree_between_source_level_and_algebraic_backends(
        courses in 2usize..9,
        edges in edge_strategy(8),
        seed_course in 0usize..9,
        body in prop_oneof![
            Just("$x/id(./prerequisites/pre_code)"),
            Just("$x/prerequisites/pre_code"),
            Just("$x/*"),
            Just("$x/self::course"),
            Just("$x/prerequisites union $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) union $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) except $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) intersect $x/id(./prerequisites/pre_code)"),
            Just("if (count($x/prerequisites/pre_code)) then $x/id(./prerequisites/pre_code) else ()"),
            Just("($x/self::course, $x/id(./prerequisites/pre_code))"),
        ],
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let seed_course = seed_course % courses;
        let query = format!(
            "with $x seeded by doc('c.xml')/curriculum/course[@code='c{seed_course}'] \
             recurse {body}"
        );
        let mut engine = Engine::new();
        engine.load_document_with_ids("c.xml", &xml, &["code"]).unwrap();
        engine.set_strategy(Strategy::Auto);

        let interpreted = engine.run(&query).unwrap();
        engine.set_backend(Backend::Algebraic);
        let algebraic = engine.run(&query).unwrap();

        // Same store, so node identities are directly comparable.
        let mut a = interpreted.result.nodes();
        let mut b = algebraic.result.nodes();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        prop_assert_eq!(a, b, "body: {}", body);
    }
}
