//! Parallel batched fixpoints must be **bit-identical** to sequential ones:
//! the `Parallelism` knob shards the per-seed phases of a batched run over a
//! frozen store snapshot, merges at the iteration barrier, and is forbidden
//! from changing any observable output — per-seed node sets, their order,
//! the concatenation, and the per-run statistics.
//!
//! The property test draws random reference graphs, random seed sets (with
//! duplicates) and random recursion bodies from a pool that mixes
//! algebraic-subset bodies (exercising the relational executor's sharded
//! `eval_tagged_batch`) with predicate-filtered ones (exercising the
//! interpreter's sharded image folds), then checks thread counts 2 and 8
//! against the sequential default under every back-end.

use proptest::prelude::*;

use xqy_ifp::xdm::Sequence;
use xqy_ifp::{Backend, Bindings, Engine, Parallelism, Strategy};

fn curriculum_from_edges(courses: usize, edges: &[(usize, usize)]) -> String {
    let mut out = String::from("<curriculum>");
    for i in 0..courses {
        out.push_str(&format!("<course code=\"c{i}\"><prerequisites>"));
        for (from, to) in edges {
            if *from == i {
                out.push_str(&format!("<pre_code>c{}</pre_code>", to % courses));
            }
        }
        out.push_str("</prerequisites></course>");
    }
    out.push_str("</curriculum>");
    out
}

fn edge_strategy(courses: usize) -> impl proptest::strategy::Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..courses, 0..courses), 0..courses * 3)
}

fn curriculum_engine(xml: &str) -> Engine {
    let mut engine = Engine::new();
    // The property must hold regardless of what XQY_FIXPOINT_THREADS says;
    // pin the baseline so the reference runs are genuinely sequential.
    engine.set_parallelism(Parallelism::Sequential);
    engine
        .load_document_with_ids("c.xml", xml, &["code"])
        .unwrap();
    engine
}

fn all_courses(engine: &mut Engine) -> Sequence {
    engine.run("doc('c.xml')/curriculum/course").unwrap().result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel ≡ sequential: for random graphs, seed sets and bodies, a
    /// batched execution with `Parallelism::Fixed(2)` / `Fixed(8)` returns
    /// exactly the sequential per-seed sequences and concatenation, on
    /// every back-end.
    #[test]
    fn parallel_batched_equals_sequential(
        courses in 2usize..9,
        edges in edge_strategy(8),
        seed_picks in proptest::collection::vec(0usize..9, 1..7),
        body in prop_oneof![
            // Algebraic subset: batched runs go through the relational
            // executor, whose tagged body evaluation shards across workers.
            Just("$x/id(./prerequisites/pre_code)"),
            Just("$x/prerequisites/pre_code"),
            Just("$x/*"),
            Just("$x/prerequisites union $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) except $x/self::course"),
            // Outside the subset (predicates): batched runs go through the
            // interpreter driver, whose image folds and materializations
            // shard via `fixpoint_threads`.
            Just("$x/id(./prerequisites/pre_code)[@code]"),
            Just("$x/*[exists(./pre_code)]"),
            Just("$x/id(./prerequisites/pre_code)[exists(../prerequisites)] union $x/self::course[@code='c0']"),
        ],
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let query = format!("with $x seeded by $seed recurse {body}");
        for backend in [Backend::SourceLevel, Backend::Algebraic, Backend::Auto] {
            let mut engine = curriculum_engine(&xml);
            engine.set_strategy(Strategy::Auto);
            let prepared = engine.prepare(&query).unwrap().with_backend(backend);
            if backend == Backend::Algebraic
                && !prepared.occurrences()[0].is_algebraic_capable()
            {
                // Forcing the algebraic back-end on an out-of-subset body is
                // a compile error by design; Auto covers this body below.
                continue;
            }
            let courses_seq = all_courses(&mut engine);
            let seeds = Sequence::from_nodes(
                seed_picks
                    .iter()
                    .map(|&i| courses_seq.nodes()[i % courses_seq.len()])
                    .collect::<Vec<_>>(),
            );

            let sequential = prepared
                .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                .unwrap();

            for threads in [2usize, 8] {
                // Re-prepare instead of cloning: a clone shares the
                // occurrence's cost-feedback cell, so the observations of
                // the sequential baseline would legitimately re-route the
                // parallel run (a different algorithm reports different
                // logical stats).  A fresh prepare makes both runs decide
                // from the same blank slate, isolating the sharding knob —
                // which is what this property pins.
                let parallel = engine
                    .prepare(&query)
                    .unwrap()
                    .with_backend(backend)
                    .with_parallelism(Parallelism::Fixed(threads))
                    .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                    .unwrap();
                prop_assert_eq!(parallel.batched, sequential.batched);
                prop_assert_eq!(parallel.per_seed.len(), sequential.per_seed.len());
                for (i, (p, s)) in parallel
                    .per_seed
                    .iter()
                    .zip(sequential.per_seed.iter())
                    .enumerate()
                {
                    prop_assert_eq!(
                        p.nodes(),
                        s.nodes(),
                        "seed #{} under {} with {} threads and body {}",
                        i,
                        backend.name(),
                        threads,
                        body
                    );
                }
                prop_assert_eq!(
                    parallel.outcome.result.nodes(),
                    sequential.outcome.result.nodes()
                );
                // Statistics are part of the contract: the shard count must
                // not change how many logical iterations or body
                // evaluations the run reports.
                prop_assert_eq!(
                    parallel.outcome.fixpoints.len(),
                    sequential.outcome.fixpoints.len()
                );
                for (p, s) in parallel
                    .outcome
                    .fixpoints
                    .iter()
                    .zip(sequential.outcome.fixpoints.iter())
                {
                    prop_assert_eq!(p.iterations, s.iterations);
                    prop_assert_eq!(p.payload_calls, s.payload_calls);
                    prop_assert_eq!(p.batch_seeds, s.batch_seeds);
                    prop_assert_eq!(p.backend, s.backend);
                }
            }
        }
    }
}

/// The seed-inclusive reading must survive sharding too.
#[test]
fn parallel_batched_respects_seed_in_result() {
    let xml = curriculum_from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 0), (5, 4)]);
    let mut engine = curriculum_engine(&xml);
    engine.set_seed_in_result(true);
    let query = "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)";
    for backend in [Backend::SourceLevel, Backend::Algebraic] {
        let prepared = engine.prepare(query).unwrap().with_backend(backend);
        let seeds = all_courses(&mut engine);
        let sequential = prepared
            .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
            .unwrap();
        let parallel = prepared
            .with_parallelism(Parallelism::Fixed(4))
            .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
            .unwrap();
        assert!(parallel.batched);
        for (i, (p, s)) in parallel
            .per_seed
            .iter()
            .zip(sequential.per_seed.iter())
            .enumerate()
        {
            assert!(p.nodes().contains(&seeds.nodes()[i]));
            assert_eq!(p.nodes(), s.nodes(), "seed #{i} under {}", backend.name());
        }
    }
}

/// `Parallelism::Auto` resolves to the machine's core count and still
/// matches sequential output exactly.
#[test]
fn parallel_auto_matches_sequential() {
    let xml = curriculum_from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 0), (6, 5)]);
    let mut engine = curriculum_engine(&xml);
    let query = "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)";
    let prepared = engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let seeds = all_courses(&mut engine);
    let sequential = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    let parallel = prepared
        .with_parallelism(Parallelism::Auto)
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(parallel.batched);
    assert_eq!(
        parallel.outcome.result.nodes(),
        sequential.outcome.result.nodes()
    );
    for (p, s) in parallel.per_seed.iter().zip(sequential.per_seed.iter()) {
        assert_eq!(p.nodes(), s.nodes());
    }
}

/// Node-constructing bodies are the one thing the parallel gate must refuse
/// to shard (construction mutates the store): they still run, sequentially,
/// and match the sequential baseline.
#[test]
fn constructing_bodies_stay_sequential_but_correct() {
    let xml = curriculum_from_edges(4, &[(0, 1), (1, 2)]);
    let mut engine = curriculum_engine(&xml);
    engine.set_seed_in_result(true);
    let query = "with $x seeded by $seed recurse \
                 (if (count($x) < 3) then <step/> else ())";
    let prepared = engine.prepare(query).unwrap();
    let seeds = all_courses(&mut engine);
    let sequential = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    let parallel = prepared
        .with_parallelism(Parallelism::Fixed(8))
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert_eq!(parallel.per_seed.len(), sequential.per_seed.len());
    for (p, s) in parallel.per_seed.iter().zip(sequential.per_seed.iter()) {
        assert_eq!(p.len(), s.len());
    }
}
