//! Batched multi-source fixpoints: `PreparedQuery::execute_batched` must be
//! **observationally identical** to executing the prepared query once per
//! seed — same per-seed node sets, same order, same concatenation — while
//! sharing the fixpoint work across the seeds whenever the recursion body is
//! seed-local.
//!
//! The central property test draws random algebraic-subset bodies and random
//! seed sets and checks batched ≡ per-seed on both back-ends; the unit tests
//! pin the edge cases (empty seed set, duplicate seeds, non-algebraic
//! fallback, per-batch statistics).

use proptest::prelude::*;

use xqy_ifp::eval::FixpointBackendTag;
use xqy_ifp::xdm::Sequence;
use xqy_ifp::{Backend, Bindings, Engine, Strategy};

/// Build a curriculum-like document from an arbitrary edge list over
/// `courses` nodes (the same generator the cross-backend property test
/// uses).
fn curriculum_from_edges(courses: usize, edges: &[(usize, usize)]) -> String {
    let mut out = String::from("<curriculum>");
    for i in 0..courses {
        out.push_str(&format!("<course code=\"c{i}\"><prerequisites>"));
        for (from, to) in edges {
            if *from == i {
                out.push_str(&format!("<pre_code>c{}</pre_code>", to % courses));
            }
        }
        out.push_str("</prerequisites></course>");
    }
    out.push_str("</curriculum>");
    out
}

fn edge_strategy(courses: usize) -> impl proptest::strategy::Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..courses, 0..courses), 0..courses * 3)
}

const BATCHED_QUERY: &str = "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)";

fn curriculum_engine(xml: &str) -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("c.xml", xml, &["code"])
        .unwrap();
    engine
}

/// All course elements of the loaded curriculum, in document order.
fn all_courses(engine: &mut Engine) -> Sequence {
    engine.run("doc('c.xml')/curriculum/course").unwrap().result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched ≡ per-seed equivalence property: for random
    /// algebraic-subset bodies, random reference graphs and random seed
    /// sets (with duplicates), `execute_batched` returns per seed exactly
    /// what a per-seed `execute` returns, and the concatenations agree —
    /// on the algebraic back-end (where seed-local bodies take the batched
    /// fast path) and under `Auto`.
    #[test]
    fn execute_batched_equals_per_seed_execute(
        courses in 2usize..9,
        edges in edge_strategy(8),
        seed_picks in proptest::collection::vec(0usize..9, 0..6),
        body in prop_oneof![
            Just("$x/id(./prerequisites/pre_code)"),
            Just("$x/prerequisites/pre_code"),
            Just("$x/*"),
            Just("$x/self::course"),
            Just("$x/prerequisites union $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) union $x/self::course"),
            Just("$x/id(./prerequisites/pre_code) except $x/self::course"),
            Just("if (count($x/prerequisites/pre_code)) then $x/id(./prerequisites/pre_code) else ()"),
            Just("($x/self::course, $x/id(./prerequisites/pre_code))"),
        ],
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let query = format!("with $x seeded by $seed recurse {body}");
        for backend in [Backend::Algebraic, Backend::Auto] {
            let mut engine = curriculum_engine(&xml);
            engine.set_strategy(Strategy::Auto);
            let prepared = engine.prepare(&query).unwrap().with_backend(backend);
            // Random seed set, duplicates allowed.
            let courses_seq = all_courses(&mut engine);
            let seeds = Sequence::from_nodes(
                seed_picks
                    .iter()
                    .map(|&i| courses_seq.nodes()[i % courses_seq.len()])
                    .collect::<Vec<_>>(),
            );

            let batch = prepared
                .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                .unwrap();
            prop_assert_eq!(batch.per_seed.len(), seeds.len());

            // Reference: one execute per seed item, in order.
            let mut concatenated = Vec::new();
            for (i, &seed) in seeds.nodes().iter().enumerate() {
                let bindings =
                    Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
                let reference = prepared.execute(&mut engine, &bindings).unwrap();
                prop_assert_eq!(
                    batch.per_seed[i].nodes(),
                    reference.result.nodes(),
                    "seed #{} under {} with body {}",
                    i,
                    backend.name(),
                    body
                );
                concatenated.extend(reference.result.nodes());
            }
            prop_assert_eq!(batch.outcome.result.nodes(), concatenated);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched **source-level** driver ≡ per-seed source-level
    /// execution: for random *non-algebraic* bodies (predicates keep them
    /// out of the compiler subset; the pool mixes distributive bodies,
    /// which take the shared distinct-frontier mode, and non-distributive
    /// ones, which take the grouped mode), random reference graphs and
    /// random seed sets with duplicates, `execute_batched` returns per seed
    /// exactly what a per-seed `execute` returns — under both
    /// `Backend::SourceLevel` and `Backend::Auto`.
    #[test]
    fn batched_source_level_equals_per_seed_source_level(
        courses in 2usize..9,
        edges in edge_strategy(8),
        seed_picks in proptest::collection::vec(0usize..9, 0..6),
        body in prop_oneof![
            Just("$x/id(./prerequisites/pre_code)[@code]"),
            Just("$x/id(./prerequisites/pre_code)[@code='c1' or @code='c2']"),
            Just("$x/*[exists(./pre_code)]"),
            Just("($x/id(./prerequisites/pre_code))[position() <= 3]"),
            Just("if (count($x) > 1) then $x/self::course else $x/id(./prerequisites/pre_code)"),
            Just("$x/id(./prerequisites/pre_code)[exists(../prerequisites)] union $x/self::course[@code='c0']"),
        ],
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let query = format!("with $x seeded by $seed recurse {body}");
        for backend in [Backend::SourceLevel, Backend::Auto] {
            let mut engine = curriculum_engine(&xml);
            engine.set_strategy(Strategy::Auto);
            let prepared = engine.prepare(&query).unwrap().with_backend(backend);
            prop_assert!(
                !prepared.occurrences()[0].is_algebraic_capable(),
                "body {} unexpectedly compiled",
                body
            );
            let courses_seq = all_courses(&mut engine);
            let seeds = Sequence::from_nodes(
                seed_picks
                    .iter()
                    .map(|&i| courses_seq.nodes()[i % courses_seq.len()])
                    .collect::<Vec<_>>(),
            );

            let batch = prepared
                .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
                .unwrap();
            prop_assert_eq!(batch.per_seed.len(), seeds.len());
            if !seeds.is_empty() {
                // The batch ran as one interpreted multi-source fixpoint.
                prop_assert!(batch.batched);
                prop_assert_eq!(batch.outcome.fixpoints.len(), 1);
                prop_assert!(batch.outcome.fixpoints[0].batch_seeds > 0);
                prop_assert_eq!(
                    batch.outcome.fixpoints[0].backend,
                    FixpointBackendTag::Interpreted
                );
            }

            let mut concatenated = Vec::new();
            for (i, &seed) in seeds.nodes().iter().enumerate() {
                let bindings =
                    Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
                let reference = prepared.execute(&mut engine, &bindings).unwrap();
                prop_assert_eq!(
                    batch.per_seed[i].nodes(),
                    reference.result.nodes(),
                    "seed #{} under {} with body {}",
                    i,
                    backend.name(),
                    body
                );
                concatenated.extend(reference.result.nodes());
            }
            prop_assert_eq!(batch.outcome.result.nodes(), concatenated);
        }
    }
}

#[test]
fn batched_fast_path_runs_one_shared_fixpoint() {
    let xml = curriculum_from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 0)]);
    let mut engine = curriculum_engine(&xml);
    let prepared = engine
        .prepare(BATCHED_QUERY)
        .unwrap()
        .with_backend(Backend::Algebraic);
    assert!(prepared.occurrences()[0].is_batch_capable());
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched, "seed-local algebraic body must batch");
    // One fixpoint run for the whole batch, tagged with the batch size.
    assert_eq!(batch.outcome.fixpoints.len(), 1);
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, 6);
    assert_eq!(batch.outcome.batch_seeds(), 6);
    assert_eq!(
        batch.outcome.fixpoints[0].backend,
        FixpointBackendTag::Algebraic
    );
    // The shared loop's depth is the max per-seed depth, and the body ran
    // once per shared iteration — strictly fewer evaluations than the six
    // per-seed fixpoints would have performed together.
    let per_seed_calls: usize = {
        let mut total = 0;
        for &seed in &seeds.nodes() {
            let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
            let outcome = prepared.execute(&mut engine, &bindings).unwrap();
            total += outcome.fixpoints[0].payload_calls;
        }
        total
    };
    assert!(
        batch.outcome.fixpoints[0].payload_calls < per_seed_calls,
        "batched made {} body calls, per-seed {}",
        batch.outcome.fixpoints[0].payload_calls,
        per_seed_calls
    );
}

#[test]
fn batched_empty_seed_set_is_a_noop() {
    let xml = curriculum_from_edges(3, &[(0, 1)]);
    for backend in [Backend::SourceLevel, Backend::Algebraic, Backend::Auto] {
        let mut engine = curriculum_engine(&xml);
        let prepared = engine.prepare(BATCHED_QUERY).unwrap().with_backend(backend);
        let batch = prepared
            .execute_batched(&mut engine, "seed", &Sequence::empty(), &Bindings::new())
            .unwrap();
        assert!(batch.per_seed.is_empty());
        assert!(batch.outcome.result.is_empty());
        assert!(batch.outcome.fixpoints.is_empty());
        assert_eq!(batch.outcome.batch_seeds(), 0);
        // The per-occurrence report is still present (with zero deltas).
        assert_eq!(batch.outcome.occurrences.len(), 1);
    }
}

#[test]
fn batched_duplicate_seeds_replicate_one_computation() {
    let xml = curriculum_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
    let mut engine = curriculum_engine(&xml);
    let prepared = engine
        .prepare(BATCHED_QUERY)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let courses = all_courses(&mut engine);
    let c0 = courses.nodes()[0];
    let c3 = courses.nodes()[3];
    // c0 twice, c3 once, c0 again — four result slots, two distinct seeds.
    let seeds = Sequence::from_nodes(vec![c0, c0, c3, c0]);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched);
    assert_eq!(batch.per_seed.len(), 4);
    assert_eq!(batch.per_seed[0].nodes(), batch.per_seed[1].nodes());
    assert_eq!(batch.per_seed[0].nodes(), batch.per_seed[3].nodes());
    // The fixpoint only saw the two distinct seeds.
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, 2);
    // Concatenation replicates the duplicated seed's result.
    let expected: Vec<_> = batch.per_seed.iter().flat_map(|s| s.nodes()).collect();
    assert_eq!(batch.outcome.result.nodes(), expected);
}

#[test]
fn non_algebraic_bodies_route_through_the_batched_source_level_driver() {
    // Predicate-filtered bodies are outside the compiler subset: under Auto
    // the occurrence runs source-level — since PR 5 as **one batched
    // interpreter fixpoint** over all seeds (observable via
    // `FixpointStats::batch_seeds`), not as a per-seed loop.  Results must
    // still match per-seed execution exactly.
    let xml = curriculum_from_edges(4, &[(0, 1), (1, 2)]);
    let mut engine = curriculum_engine(&xml);
    let query =
        "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)[@code='c1' or @code='c2']";
    let prepared = engine.prepare(query).unwrap().with_backend(Backend::Auto);
    assert!(!prepared.occurrences()[0].is_algebraic_capable());
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched, "non-algebraic bodies batch source-level now");
    assert_eq!(batch.outcome.fixpoints.len(), 1, "one run for the batch");
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, 4);
    assert_eq!(batch.outcome.batch_seeds(), 4);
    assert_eq!(
        batch.outcome.fixpoints[0].backend,
        FixpointBackendTag::Interpreted
    );
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
    }
}

#[test]
fn batched_source_level_shares_body_evaluations_on_distributive_bodies() {
    // A distributive source-level body (the predicate keeps it out of the
    // algebraic subset, the union keeps it syntactically distributive):
    // the batched driver evaluates each distinct frontier node once for the
    // whole batch, so it makes strictly fewer body calls than the per-seed
    // loops combined.
    let xml = curriculum_from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 0), (5, 0)]);
    let mut engine = curriculum_engine(&xml);
    let query = "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)[@code]";
    let prepared = engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::SourceLevel);
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched);
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, 6);
    let mut per_seed_calls = 0;
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
        per_seed_calls += reference.fixpoints[0].payload_calls;
    }
    assert!(
        batch.outcome.fixpoints[0].payload_calls < per_seed_calls,
        "batched made {} body calls, per-seed loops {}",
        batch.outcome.fixpoints[0].payload_calls,
        per_seed_calls
    );
}

#[test]
fn batched_source_level_handles_cross_document_seeds() {
    // Unlike the algebraic batched plan (one context document per run), the
    // source-level driver resolves `id()` per frontier node, so seed sets
    // spanning documents batch fine and match per-seed results.
    let xml_a = curriculum_from_edges(3, &[(0, 1), (1, 2)]);
    let xml_b = curriculum_from_edges(4, &[(0, 2), (2, 3)]);
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("c.xml", &xml_a, &["code"])
        .unwrap();
    engine
        .load_document_with_ids("d.xml", &xml_b, &["code"])
        .unwrap();
    let prepared = engine
        .prepare(BATCHED_QUERY)
        .unwrap()
        .with_backend(Backend::SourceLevel);
    let mut seeds = engine
        .run("doc('c.xml')/curriculum/course")
        .unwrap()
        .result
        .nodes();
    seeds.extend(
        engine
            .run("doc('d.xml')/curriculum/course")
            .unwrap()
            .result
            .nodes(),
    );
    let seeds = Sequence::from_nodes(seeds);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched, "source-level batches across documents");
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, seeds.len());
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
    }
}

#[test]
fn batched_source_level_duplicate_and_empty_seeds() {
    let xml = curriculum_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
    let mut engine = curriculum_engine(&xml);
    let query =
        "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)[@code='c1' or @code='c2']";
    let prepared = engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::SourceLevel);
    // Empty seed set: a true no-op, nothing recorded.
    let empty = prepared
        .execute_batched(&mut engine, "seed", &Sequence::empty(), &Bindings::new())
        .unwrap();
    assert!(empty.per_seed.is_empty());
    assert!(empty.outcome.fixpoints.is_empty());
    // Duplicates fold onto one computation and replicate.
    let courses = all_courses(&mut engine);
    let (c0, c3) = (courses.nodes()[0], courses.nodes()[3]);
    let seeds = Sequence::from_nodes(vec![c0, c0, c3, c0]);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched);
    assert_eq!(batch.per_seed.len(), 4);
    assert_eq!(batch.per_seed[0].nodes(), batch.per_seed[1].nodes());
    assert_eq!(batch.per_seed[0].nodes(), batch.per_seed[3].nodes());
    assert_eq!(batch.outcome.fixpoints[0].batch_seeds, 2, "distinct seeds");
    let expected: Vec<_> = batch.per_seed.iter().flat_map(|s| s.nodes()).collect();
    assert_eq!(batch.outcome.result.nodes(), expected);
}

#[test]
fn non_fixpoint_query_shapes_fall_back_to_per_seed_execution() {
    // The per-item FLWOR shape (`for $s in $seed return (with ...)`) is not
    // a bare fixpoint over `$seed`; execute_batched must still honour the
    // contract by executing the module once per seed item.
    let xml = curriculum_from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
    let mut engine = curriculum_engine(&xml);
    let query = "for $s in $seed return \
                 (with $x seeded by $s recurse $x/id(./prerequisites/pre_code))";
    let prepared = engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(!batch.batched);
    assert_eq!(batch.per_seed.len(), 4);
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
    }
}

#[test]
fn batched_execution_reuses_the_persistent_static_cache() {
    // A body with a rec-independent arm: the seed-carried plan's static
    // tables are paid once by the first batch and shared by the second.
    let xml = curriculum_from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
    let mut engine = curriculum_engine(&xml);
    let query = "with $x seeded by $seed recurse \
                 ($x/id(./prerequisites/pre_code) union $x/self::course)";
    let prepared = engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let seeds = all_courses(&mut engine);
    let first = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(first.batched);
    let second = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert_eq!(
        second.outcome.occurrences[0].static_plan_evals, 0,
        "second batch must re-evaluate no rec-independent plan node"
    );
    assert_eq!(first.outcome.result.nodes(), second.outcome.result.nodes());
}

#[test]
fn batched_seeds_spanning_documents_fall_back_for_id_bodies() {
    // id() resolves against one document per run; a batch mixing documents
    // must decline the fast path and still return per-seed-correct results.
    let xml_a = curriculum_from_edges(3, &[(0, 1), (1, 2)]);
    let xml_b = curriculum_from_edges(3, &[(0, 2)]);
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("c.xml", &xml_a, &["code"])
        .unwrap();
    engine
        .load_document_with_ids("d.xml", &xml_b, &["code"])
        .unwrap();
    let prepared = engine
        .prepare(BATCHED_QUERY)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let mut seeds = engine
        .run("doc('c.xml')/curriculum/course")
        .unwrap()
        .result
        .nodes();
    seeds.extend(
        engine
            .run("doc('d.xml')/curriculum/course")
            .unwrap()
            .result
            .nodes(),
    );
    let seeds = Sequence::from_nodes(seeds);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(!batch.batched, "cross-document id() batch must fall back");
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
    }
}

#[test]
fn batched_respects_seed_in_result_reading() {
    let xml = curriculum_from_edges(4, &[(0, 1), (1, 2)]);
    let mut engine = curriculum_engine(&xml);
    engine.set_seed_in_result(true);
    let prepared = engine
        .prepare(BATCHED_QUERY)
        .unwrap()
        .with_backend(Backend::Algebraic);
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched);
    for (i, &seed) in seeds.nodes().iter().enumerate() {
        assert!(
            batch.per_seed[i].nodes().contains(&seed),
            "seed-inclusive reading keeps each seed in its own closure"
        );
        let bindings = Bindings::new().with("seed", Sequence::from_nodes(vec![seed]));
        let reference = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(batch.per_seed[i].nodes(), reference.result.nodes());
    }
}
