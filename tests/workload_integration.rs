//! Whole-workload integration tests: the four benchmark workloads of the
//! paper's Table 2, run at small scale on both back-ends and with both
//! algorithms, checking that (i) Naïve and Delta agree on these
//! distributive bodies, (ii) Delta feeds back strictly fewer nodes, and
//! (iii) the relational back-end agrees with the source-level evaluator.

use xqy_datagen::{auction, curriculum, hospital, play, Scale};
use xqy_ifp::{Backend, Bindings, Engine, Strategy};

struct Workload {
    name: &'static str,
    uri: &'static str,
    xml: String,
    id_attrs: &'static [&'static str],
    seed_query: String,
    body: &'static str,
    query: String,
}

fn workloads() -> Vec<Workload> {
    let curriculum_xml = curriculum::generate(&curriculum::CurriculumConfig {
        courses: 120,
        max_prerequisites: 3,
        cycles: 3,
        seed: 42,
    });
    let auction_xml = auction::generate(&auction::AuctionConfig {
        persons: 60,
        auctions: 90,
        max_bidders: 3,
        seed: 42,
    });
    let play_xml = play::generate(&play::PlayConfig::for_scale(Scale::Small));
    let hospital_xml = hospital::generate(&hospital::HospitalConfig {
        patients: 800,
        max_depth: 5,
        disease_percent: 20,
        seed: 42,
    });
    vec![
        Workload {
            name: "curriculum",
            uri: curriculum::DOC_URI,
            xml: curriculum_xml,
            id_attrs: &["code"],
            seed_query: format!(
                "doc('{}')/curriculum/course[@code='c100']",
                curriculum::DOC_URI
            ),
            body: curriculum::BODY,
            query: curriculum::prerequisites_query("c100"),
        },
        Workload {
            name: "bidder network",
            uri: auction::DOC_URI,
            xml: auction_xml,
            id_attrs: &[],
            seed_query: format!("doc('{}')/site/people/person[@id='p0']", auction::DOC_URI),
            body: auction::BODY,
            query: auction::bidder_network_query("p0"),
        },
        Workload {
            name: "dialogs",
            uri: play::DOC_URI,
            xml: play_xml,
            id_attrs: &[],
            seed_query: format!("doc('{}')//SPEECH[@start='1']", play::DOC_URI),
            body: play::BODY,
            query: play::dialogs_query(),
        },
        Workload {
            name: "hospital",
            uri: hospital::DOC_URI,
            xml: hospital_xml,
            id_attrs: &[],
            seed_query: format!(
                "doc('{}')/hospital/patient[@disease='yes']",
                hospital::DOC_URI
            ),
            body: hospital::BODY,
            query: hospital::hereditary_query(),
        },
    ]
}

fn engine_for(workload: &Workload) -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids(workload.uri, &workload.xml, workload.id_attrs)
        .unwrap();
    engine
}

#[test]
fn naive_and_delta_agree_and_delta_feeds_fewer_nodes() {
    for workload in workloads() {
        let mut naive_engine = engine_for(&workload);
        naive_engine.set_strategy(Strategy::Naive);
        let naive = naive_engine.run(&workload.query).unwrap();

        let mut delta_engine = engine_for(&workload);
        delta_engine.set_strategy(Strategy::Delta);
        let delta = delta_engine.run(&workload.query).unwrap();

        assert_eq!(
            naive.result.len(),
            delta.result.len(),
            "{}: Naive and Delta must agree",
            workload.name
        );
        let naive_fed: u64 = naive.fixpoints.iter().map(|s| s.nodes_fed_back).sum();
        let delta_fed: u64 = delta.fixpoints.iter().map(|s| s.nodes_fed_back).sum();
        assert!(
            delta_fed <= naive_fed,
            "{}: Delta ({delta_fed}) must not feed back more nodes than Naive ({naive_fed})",
            workload.name
        );
    }
}

#[test]
fn auto_strategy_selects_delta_for_every_workload() {
    for workload in workloads() {
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Auto);
        let outcome = engine.run(&workload.query).unwrap();
        assert_eq!(
            outcome.strategy_used(),
            xqy_ifp::eval::FixpointStrategy::Delta,
            "{}: all benchmark bodies are distributive",
            workload.name
        );
        assert!(outcome.distributivity.iter().all(|d| d.is_distributive()));
    }
}

#[test]
fn relational_backend_agrees_with_the_evaluator() {
    for workload in workloads() {
        let mut engine = engine_for(&workload);
        engine.set_strategy(Strategy::Delta);
        let reference = engine.run(&workload.query).unwrap();

        // The same recursion body on the relational back-end: one prepared
        // query per algorithm, seed bound externally, plan compiled once.
        let seed = engine.run(&workload.seed_query).unwrap().result;
        let bindings = Bindings::new().with("seed", seed);
        let fixpoint_query = format!("with $x seeded by $seed recurse {}", workload.body);
        engine.set_backend(Backend::Algebraic);

        engine.set_strategy(Strategy::Naive);
        let mu = engine
            .prepare(&fixpoint_query)
            .unwrap()
            .execute(&mut engine, &bindings)
            .unwrap();
        engine.set_strategy(Strategy::Delta);
        let mud = engine
            .prepare(&fixpoint_query)
            .unwrap()
            .execute(&mut engine, &bindings)
            .unwrap();

        assert_eq!(
            mu.result.len(),
            reference.result.len(),
            "{}: µ result differs from the evaluator",
            workload.name
        );
        assert_eq!(
            mud.result.len(),
            reference.result.len(),
            "{}: µ∆ result differs from the evaluator",
            workload.name
        );
        assert!(
            mud.fixpoints[0].nodes_fed_back <= mu.fixpoints[0].nodes_fed_back,
            "{}: µ∆ must not feed back more rows than µ",
            workload.name
        );
        assert!(mu
            .occurrences
            .iter()
            .all(|o| o.backend == xqy_ifp::eval::FixpointBackendTag::Algebraic));
    }
}

#[test]
fn bidder_network_value_join_formulation_matches_id_link_formulation() {
    // Figure 10's original value-join query (source-level engine only) and
    // the id-link reformulation used by the algebraic compiler must compute
    // the same network.
    let xml = auction::generate(&auction::AuctionConfig {
        persons: 40,
        auctions: 70,
        max_bidders: 3,
        seed: 7,
    });
    let mut engine = Engine::new();
    engine.load_document(auction::DOC_URI, &xml).unwrap();
    let via_links = engine.run(&auction::bidder_network_query("p3")).unwrap();
    let via_join = engine
        .run(&auction::bidder_network_value_join_query("p3"))
        .unwrap();
    assert_eq!(via_links.result.nodes(), via_join.result.nodes());
}

#[test]
fn consistency_check_finds_only_cyclic_courses() {
    let xml = curriculum::generate(&curriculum::CurriculumConfig {
        courses: 60,
        max_prerequisites: 2,
        cycles: 2,
        seed: 5,
    });
    let mut engine = Engine::new();
    engine
        .load_document_with_ids(curriculum::DOC_URI, &xml, &["code"])
        .unwrap();
    let outcome = engine.run(&curriculum::consistency_check_query()).unwrap();
    // Exactly the 2 * cycles cycle-closing courses are among their own
    // prerequisites (the layered DAG part is acyclic by construction).
    assert_eq!(outcome.result.len(), 4);
}

#[test]
fn dialog_recursion_depth_matches_the_longest_dialog() {
    let config = play::PlayConfig::for_scale(Scale::Small);
    let xml = play::generate(&config);
    let expected = play::max_dialog_length(&xml);
    let mut engine = Engine::new();
    engine.load_document(play::DOC_URI, &xml).unwrap();
    engine.set_strategy(Strategy::Delta);
    let outcome = engine.run(&play::dialogs_query()).unwrap();
    let depth = outcome.fixpoints[0].iterations;
    // A dialog of length L contributes L-1 continuation hops; the recursion
    // needs one extra iteration to detect convergence.
    assert_eq!(
        depth,
        expected.saturating_sub(1),
        "depth {depth} vs dialog length {expected}"
    );
}

#[test]
fn max_dialog_length_query_matches_ground_truth() {
    let config = play::PlayConfig::for_scale(Scale::Small);
    let xml = play::generate(&config);
    let expected = play::max_dialog_length(&xml);
    let mut engine = Engine::new();
    engine.load_document(play::DOC_URI, &xml).unwrap();
    let outcome = engine.run(&play::max_dialog_query()).unwrap();
    let reported = outcome.result.items()[0]
        .as_atomic()
        .unwrap()
        .to_integer()
        .unwrap();
    assert_eq!(reported as usize, expected);
}
