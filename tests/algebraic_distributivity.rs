//! Integration tests for the algebraic (∪ push-up) distributivity check —
//! Section 4 / Figure 9 / Table 1 of the paper.

use xqy_ifp::algebra::{check_distributivity, compile_recursion_body, Operator, Plan};
use xqy_ifp::parser::parse_expr;
use xqy_ifp::xdm::{Axis, NodeTest};

fn body(src: &str) -> xqy_ifp::parser::Expr {
    parse_expr(src).unwrap()
}

#[test]
fn figure_9a_q1_body_is_distributive() {
    let compiled = compile_recursion_body(&body("$x/id(./prerequisites/pre_code)"), "x").unwrap();
    assert!(compiled.distributivity.distributive);
    // The plan contains the step joins and the id lookup of Figure 9(a).
    let rendered = compiled.plan.render();
    assert!(rendered.contains("child::prerequisites"));
    assert!(rendered.contains("child::pre_code"));
    assert!(rendered.contains("id()"));
}

#[test]
fn figure_9b_q2_body_is_blocked_at_count() {
    let compiled =
        compile_recursion_body(&body("if (count($x/self::a)) then $x/* else ()"), "x").unwrap();
    assert!(!compiled.distributivity.distributive);
    assert_eq!(compiled.distributivity.blocked_by.as_deref(), Some("count"));
}

#[test]
fn benchmark_bodies_are_all_recognised_as_distributive() {
    for (name, src) in [
        ("curriculum", xqy_datagen::curriculum::BODY),
        ("bidder network", xqy_datagen::auction::BODY),
        ("dialogs", xqy_datagen::play::BODY),
        ("hospital", xqy_datagen::hospital::BODY),
    ] {
        let compiled = compile_recursion_body(&body(src), "x")
            .unwrap_or_else(|e| panic!("{name} body should compile: {e}"));
        assert!(
            compiled.distributivity.distributive,
            "{name} body should be distributive"
        );
    }
}

#[test]
fn table_1_push_flags() {
    // ⊙ / ⊗ rows.
    for op in [
        Operator::Project(vec![("item".into(), "item".into())]),
        Operator::Select {
            column: "item".into(),
            value: "v".into(),
        },
        Operator::Join {
            left: "item".into(),
            right: "item".into(),
        },
        Operator::Cross,
        Operator::Union,
        Operator::RowTag,
        Operator::Step {
            axis: Axis::Child,
            test: NodeTest::AnyElement,
        },
        Operator::Mu,
        Operator::MuDelta,
    ] {
        assert!(op.union_pushable(), "{} should be pushable", op.name());
    }
    // "−" rows.
    for op in [
        Operator::Distinct,
        Operator::Difference,
        Operator::Count { group_by: None },
        Operator::RowNum,
        Operator::Construct("e".into()),
    ] {
        assert!(!op.union_pushable(), "{} should block", op.name());
    }
}

#[test]
fn hand_built_plan_mixing_branches() {
    // A plan where one branch of the recursion input flows through a
    // pushable chain and another through an aggregate: the whole plan is
    // rejected, and the blocking operator is reported.
    let mut plan = Plan::new();
    let rec = plan.add(Operator::RecInput, vec![]);
    let steps = plan.add(
        Operator::Step {
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        },
        vec![rec],
    );
    let agg = plan.add(Operator::Count { group_by: None }, vec![rec]);
    let cross = plan.add(Operator::Cross, vec![steps, agg]);
    plan.set_root(cross);
    let outcome = check_distributivity(&plan);
    assert!(!outcome.distributive);
    assert_eq!(outcome.blocked_by.as_deref(), Some("count"));
    assert!(outcome.pushed_through.contains(&steps));
}

#[test]
fn syntactic_and_algebraic_checks_agree_on_the_paper_examples() {
    let cases = [
        ("$x/id(./prerequisites/pre_code)", true),
        ("if (count($x/self::a)) then $x/* else ()", false),
        ("$x/child::a union $x/descendant::b", true),
        ("($x/*, <grow/>)", false),
    ];
    for (src, expected) in cases {
        let expr = body(src);
        let syntactic = xqy_ifp::is_distributivity_safe(&expr, "x", &[]);
        let algebraic = compile_recursion_body(&expr, "x").unwrap();
        assert_eq!(syntactic.safe, expected, "syntactic on {src}");
        assert_eq!(
            algebraic.distributivity.distributive, expected,
            "algebraic on {src}"
        );
    }
}

#[test]
fn unsupported_bodies_report_unsupported_rather_than_guessing() {
    // The id()-unfolded variation of Q1 from Section 4 contains a general
    // FLWOR with a where-clause value join; it lies outside the restricted
    // compiler's subset, so the algebraic check abstains (and the paper's
    // point — that the algebraic check is more robust than the syntactic
    // one — is documented in EXPERIMENTS.md as a known gap of this
    // reproduction).
    let unfolded = "for $c in doc('curriculum.xml')/curriculum/course \
                    where $c/@code = $x/prerequisites/pre_code \
                    return $c";
    let err = compile_recursion_body(&body(unfolded), "x").unwrap_err();
    assert!(matches!(
        err,
        xqy_ifp::algebra::AlgebraError::Unsupported(_)
    ));
}
