//! Prepared-query surface tests: parse/analyse/compile once, execute many —
//! reuse across bindings and late-loaded documents, error paths for
//! unbound / mistyped external variables, per-occurrence strategy and
//! back-end selection, and Naïve ≡ Delta equivalence through the new API.

use xqy_ifp::eval::{FixpointBackendTag, FixpointStrategy};
use xqy_ifp::{Backend, Bindings, Engine, IfpError, Strategy};

const CURRICULUM: &str = r#"<curriculum>
    <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
    <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
    <course code="c3"><prerequisites/></course>
    <course code="c4"><prerequisites/></course>
</curriculum>"#;

const PREREQ_BODY: &str = "$x/id(./prerequisites/pre_code)";

fn curriculum_engine() -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
        .unwrap();
    engine
}

fn seed_for(engine: &mut Engine, code: &str) -> Bindings {
    let seed = engine
        .run(&format!(
            "doc('curriculum.xml')/curriculum/course[@code='{code}']"
        ))
        .unwrap()
        .result;
    Bindings::new().with("seed", seed)
}

#[test]
fn one_prepared_query_serves_many_bindings() {
    let mut engine = curriculum_engine();
    let prepared = engine
        .prepare(&format!("with $x seeded by $seed recurse {PREREQ_BODY}"))
        .unwrap();
    assert_eq!(prepared.external_variables(), ["seed"]);

    let expected = [("c1", 3), ("c2", 1), ("c3", 0), ("c4", 0)];
    for (code, size) in expected {
        let bindings = seed_for(&mut engine, code);
        let outcome = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(outcome.result.len(), size, "closure of {code}");
    }
}

#[test]
fn executing_n_times_parses_and_compiles_exactly_once() {
    let mut engine = curriculum_engine();
    // Preparation pays the parse and the (per-occurrence) plan compilation…
    let prepared = engine
        .prepare(&format!(
            "for $s in $seed return (with $x seeded by $s recurse {PREREQ_BODY})"
        ))
        .unwrap();
    let bindings = {
        let seed = engine
            .run("doc('curriculum.xml')/curriculum/course")
            .unwrap()
            .result;
        Bindings::new().with("seed", seed)
    };
    // …and N executions (4 fixpoints each: one per seed course) pay neither.
    let parses = xqy_ifp::parser::parse_count();
    let compiles = xqy_ifp::algebra::compile_count();
    for _ in 0..5 {
        let outcome = prepared.execute(&mut engine, &bindings).unwrap();
        assert_eq!(outcome.fixpoints.len(), 4);
    }
    assert_eq!(xqy_ifp::parser::parse_count(), parses, "no re-parsing");
    assert_eq!(
        xqy_ifp::algebra::compile_count(),
        compiles,
        "no re-compilation"
    );
}

#[test]
fn documents_loaded_after_prepare_are_visible() {
    let mut engine = Engine::new();
    // Prepare against an empty store: preparation is purely static.
    let prepared = engine
        .prepare(&format!("with $x seeded by $seed recurse {PREREQ_BODY}"))
        .unwrap();
    engine
        .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
        .unwrap();
    let bindings = seed_for(&mut engine, "c1");
    let outcome = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(outcome.result.len(), 3);
}

#[test]
fn unbound_external_variable_is_rejected_before_evaluation() {
    let mut engine = curriculum_engine();
    let prepared = engine
        .prepare(&format!("with $x seeded by $seed recurse {PREREQ_BODY}"))
        .unwrap();
    let err = prepared.execute(&mut engine, &Bindings::new()).unwrap_err();
    assert!(matches!(err, IfpError::UnboundVariable(name) if name == "seed"));
    // Binding an unrelated name does not help.
    let err = prepared
        .execute(
            &mut engine,
            &Bindings::new().with("sead", xqy_ifp::xdm::Sequence::empty()),
        )
        .unwrap_err();
    assert!(matches!(err, IfpError::UnboundVariable(_)));
}

#[test]
fn mistyped_external_variable_is_a_type_error() {
    let mut engine = curriculum_engine();
    let prepared = engine
        .prepare(&format!("with $x seeded by $seed recurse {PREREQ_BODY}"))
        .unwrap();
    // An IFP seed must be a node sequence; atomics are a dynamic type error.
    let atomic = engine.run("(1, 2, 3)").unwrap().result;
    let err = prepared
        .execute(&mut engine, &Bindings::new().with("seed", atomic))
        .unwrap_err();
    assert!(
        matches!(err, IfpError::Eval(xqy_ifp::eval::EvalError::Type(_))),
        "got {err:?}"
    );
}

#[test]
fn naive_and_delta_agree_through_the_prepared_surface() {
    let query = format!("with $x seeded by $seed recurse {PREREQ_BODY}");
    for backend in [Backend::SourceLevel, Backend::Algebraic, Backend::Auto] {
        let mut sizes = Vec::new();
        for strategy in [Strategy::Naive, Strategy::Delta] {
            let mut engine = curriculum_engine();
            engine.set_strategy(strategy);
            engine.set_backend(backend);
            let prepared = engine.prepare(&query).unwrap();
            let bindings = seed_for(&mut engine, "c1");
            let outcome = prepared.execute(&mut engine, &bindings).unwrap();
            sizes.push(outcome.result.len());
        }
        assert_eq!(
            sizes[0],
            sizes[1],
            "Naive and Delta must agree on a distributive body ({})",
            backend.name()
        );
    }
}

#[test]
fn auto_strategy_mixes_delta_and_naive_per_occurrence() {
    // Acceptance criterion of the redesign: one distributive and one
    // non-distributive occurrence in the same query run Delta and Naïve
    // respectively under `Strategy::Auto`, both visible in the outcome.
    let mut engine = Engine::new();
    engine.set_seed_in_result(true);
    let prepared = engine
        .prepare(
            "let $a := <a><b/></a> return \
             ((with $x seeded by $a recurse $x/*), \
              (with $y seeded by $a recurse if (count($y)) then $y/* else ()))",
        )
        .unwrap();
    assert_eq!(prepared.occurrences().len(), 2);
    assert_eq!(
        prepared.occurrences()[0].strategy(),
        FixpointStrategy::Delta
    );
    assert_eq!(
        prepared.occurrences()[1].strategy(),
        FixpointStrategy::Naive
    );

    let outcome = prepared.execute(&mut engine, &Bindings::new()).unwrap();
    assert_eq!(outcome.occurrences[0].strategy, FixpointStrategy::Delta);
    assert_eq!(outcome.occurrences[1].strategy, FixpointStrategy::Naive);
    assert_eq!(outcome.strategy_used(), FixpointStrategy::Naive);
}

#[test]
fn auto_backend_mixes_algebraic_and_interpreted_per_occurrence() {
    // `position()` inside a predicate is outside the algebraic compiler's
    // subset, so under Backend::Auto the first occurrence runs on the
    // relational executor and the second falls back to the interpreter.
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Auto);
    let prepared = engine
        .prepare(&format!(
            "((with $x seeded by $seed recurse {PREREQ_BODY}), \
              (with $y seeded by $seed recurse $y/id(./prerequisites/pre_code)[position() > 0]))"
        ))
        .unwrap();
    assert!(prepared.occurrences()[0].is_algebraic_capable());
    assert!(!prepared.occurrences()[1].is_algebraic_capable());

    let bindings = seed_for(&mut engine, "c1");
    let outcome = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(
        outcome.occurrences[0].backend,
        FixpointBackendTag::Algebraic
    );
    assert_eq!(
        outcome.occurrences[1].backend,
        FixpointBackendTag::Interpreted
    );
    // Both compute the same 3-course closure; the sequence constructor
    // concatenates the two results without deduplication.
    assert_eq!(outcome.result.len(), 6);
    assert_eq!(outcome.fixpoints.len(), 2);
    assert_eq!(outcome.fixpoints[0].backend, FixpointBackendTag::Algebraic);
    assert_eq!(
        outcome.fixpoints[1].backend,
        FixpointBackendTag::Interpreted
    );
}

#[test]
fn explicit_algebraic_backend_rejects_bodies_outside_the_subset() {
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Algebraic);
    let prepared = engine
        .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)[position() > 0]")
        .unwrap();
    let bindings = seed_for(&mut engine, "c1");
    let err = prepared.execute(&mut engine, &bindings).unwrap_err();
    assert!(matches!(err, IfpError::Algebra(_)), "got {err:?}");
}

#[test]
fn prepared_backend_override_beats_the_engine_default() {
    let mut engine = curriculum_engine();
    let prepared = engine
        .prepare(&format!("with $x seeded by $seed recurse {PREREQ_BODY}"))
        .unwrap()
        .with_backend(Backend::Algebraic);
    let bindings = seed_for(&mut engine, "c1");
    let outcome = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(
        outcome.occurrences[0].backend,
        FixpointBackendTag::Algebraic
    );
    assert_eq!(outcome.result.len(), 3);
}

#[test]
fn per_item_prepared_query_batches_per_seed_fixpoints() {
    // The Figure-10 shape: one fixpoint per seed node, all sharing one
    // prepared artifact (and, on the algebraic back-end, one compiled plan).
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Algebraic);
    let prepared = engine
        .prepare(&format!(
            "for $s in $seed return (with $x seeded by $s recurse {PREREQ_BODY})"
        ))
        .unwrap();
    let all_courses = engine
        .run("doc('curriculum.xml')/curriculum/course")
        .unwrap()
        .result;
    let bindings = Bindings::new().with("seed", all_courses);
    let compiles = xqy_ifp::algebra::compile_count();
    let outcome = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(xqy_ifp::algebra::compile_count(), compiles);
    assert_eq!(outcome.fixpoints.len(), 4, "one fixpoint per course");
    // c1 -> 3, c2 -> 1, c3/c4 -> 0; the for-loop concatenates the closures.
    assert_eq!(outcome.result.len(), 4);
}

#[test]
fn bindings_shadow_nothing_and_support_rebinding() {
    let mut engine = curriculum_engine();
    let prepared = engine.prepare("count($seed)").unwrap();
    let one = seed_for(&mut engine, "c1");
    let outcome = prepared.execute(&mut engine, &one).unwrap();
    assert_eq!(engine.display(&outcome.result), "1");

    let all = {
        let seed = engine
            .run("doc('curriculum.xml')/curriculum/course")
            .unwrap()
            .result;
        Bindings::new().with("seed", seed)
    };
    let outcome = prepared.execute(&mut engine, &all).unwrap();
    assert_eq!(engine.display(&outcome.result), "4");
}

#[test]
fn second_execute_performs_zero_rec_independent_plan_evaluations() {
    // The tentpole promise of the persistent-executor refactor: the
    // rec-independent static cache survives across `execute()` calls, so
    // re-running a prepared query against an unchanged store evaluates
    // *zero* rec-independent plan nodes and reports its reuse per
    // occurrence in the outcome.
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Algebraic);
    // A body with rec-independent work: the doc-rooted course scan.
    let prepared = engine
        .prepare(
            "with $x seeded by $seed recurse \
             doc('curriculum.xml')/curriculum/course[@code='c4']",
        )
        .unwrap();
    let bindings = seed_for(&mut engine, "c1");

    let first = prepared.execute(&mut engine, &bindings).unwrap();
    assert!(
        first.occurrences[0].static_plan_evals > 0,
        "first execution must evaluate the rec-independent scan once"
    );

    let second = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(
        second.occurrences[0].static_plan_evals, 0,
        "second execution must reuse every rec-independent table"
    );
    assert!(
        second.occurrences[0].static_cache_hits > 0,
        "…and report the shared-handle hits"
    );
    // The per-run fixpoint statistics carry the same counters.
    assert!(second.fixpoints.iter().all(|s| s.static_plan_evals == 0));
}

#[test]
fn loading_a_document_after_execute_invalidates_the_static_cache() {
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Algebraic);
    let prepared = engine
        .prepare(
            "with $x seeded by $seed recurse \
             doc('curriculum.xml')/curriculum/course[@code='c4']",
        )
        .unwrap();
    let bindings = seed_for(&mut engine, "c1");
    prepared.execute(&mut engine, &bindings).unwrap();

    // A document load bumps the store's load epoch: the persistent
    // executors must drop their static caches and re-derive.
    engine.load_document("late.xml", "<late/>").unwrap();
    let outcome = prepared.execute(&mut engine, &bindings).unwrap();
    assert!(
        outcome.occurrences[0].static_plan_evals > 0,
        "a post-prepare document load must invalidate the static cache"
    );
}

#[test]
fn per_item_loop_shares_static_work_across_seeds() {
    // One fixpoint per seed course: the rec-independent scan is evaluated
    // for the first seed only; the remaining seeds hit the cache.
    let mut engine = curriculum_engine();
    engine.set_backend(Backend::Algebraic);
    let prepared = engine
        .prepare(
            "for $s in $seed return (with $x seeded by $s recurse \
             doc('curriculum.xml')/curriculum/course[@code='c4'])",
        )
        .unwrap();
    let all = engine
        .run("doc('curriculum.xml')/curriculum/course")
        .unwrap()
        .result;
    let outcome = prepared
        .execute(&mut engine, &Bindings::new().with("seed", all))
        .unwrap();
    assert_eq!(outcome.fixpoints.len(), 4);
    let evals: Vec<u64> = outcome
        .fixpoints
        .iter()
        .map(|s| s.static_plan_evals)
        .collect();
    assert!(evals[0] > 0, "first seed pays the static work: {evals:?}");
    assert!(
        evals[1..].iter().all(|&e| e == 0),
        "later seeds must ride the cache: {evals:?}"
    );
}

#[test]
fn prepared_query_executed_against_a_different_engine_sees_that_store() {
    // A prepared query's persistent executors cache tables keyed on the
    // store's load epoch.  Epochs are globally unique, so executing the
    // same prepared artifact against a *different* engine — even one that
    // performed the same number of loads — must invalidate and re-derive
    // from that engine's documents, never serve node ids from the first.
    let mut a = curriculum_engine();
    a.set_backend(Backend::Algebraic);
    let prepared = a
        .prepare(
            "with $x seeded by $seed recurse \
             doc('curriculum.xml')/curriculum/course[@code='c4']",
        )
        .unwrap();
    let bindings_a = seed_for(&mut a, "c1");
    let on_a = prepared.execute(&mut a, &bindings_a).unwrap();
    assert_eq!(on_a.result.len(), 1, "engine A has a c4 course");

    // Engine B: same URI, same number of loads, but no c4 course at all.
    let mut b = Engine::new();
    b.set_backend(Backend::Algebraic);
    b.load_document_with_ids(
        "curriculum.xml",
        r#"<curriculum>
            <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
            <course code="c2"><prerequisites/></course>
        </curriculum>"#,
        &["code"],
    )
    .unwrap();
    let bindings_b = seed_for(&mut b, "c1");
    let on_b = prepared.execute(&mut b, &bindings_b).unwrap();
    assert_eq!(
        on_b.result.len(),
        0,
        "engine B has no c4 course; a stale cached table from A would leak one"
    );
    assert!(
        on_b.occurrences[0].static_plan_evals > 0,
        "the switch of stores must invalidate the static cache"
    );
}
