//! End-to-end engine tests: strategy selection, statistics, Regular XPath
//! closure helpers, and multi-document queries.

use xqy_ifp::closure::{reflexive_transitive_closure, transitive_closure};
use xqy_ifp::eval::FixpointStrategy;
use xqy_ifp::parser::ast::QueryModule;
use xqy_ifp::{Engine, Strategy};

const TREE: &str = "<r><a><b><c/></b></a><d><e/></d></r>";

#[test]
fn regular_xpath_child_closure_equals_descendant_axis() {
    let mut engine = Engine::new();
    engine.load_document("tree.xml", TREE).unwrap();
    let closure = transitive_closure("doc('tree.xml')/r", "child::*").unwrap();
    let module = QueryModule {
        functions: vec![],
        variables: vec![],
        body: closure,
    };
    let via_closure = engine.run_module(&module).unwrap();
    let via_axis = engine.run("doc('tree.xml')/r/descendant::*").unwrap();
    assert_eq!(via_closure.result.nodes(), via_axis.result.nodes());
    // Closure bodies are distributive, so Auto must have picked Delta.
    assert_eq!(via_closure.strategy_used(), FixpointStrategy::Delta);
}

#[test]
fn reflexive_closure_includes_the_seed_nodes() {
    let mut engine = Engine::new();
    engine.load_document("tree.xml", TREE).unwrap();
    let star = reflexive_transitive_closure("doc('tree.xml')/r", "child::*").unwrap();
    let module = QueryModule {
        functions: vec![],
        variables: vec![],
        body: star,
    };
    let result = engine.run_module(&module).unwrap();
    let plus = engine.run("doc('tree.xml')/r/descendant::*").unwrap();
    assert_eq!(result.result.len(), plus.result.len() + 1);
}

#[test]
fn following_sibling_closure() {
    let mut engine = Engine::new();
    engine.load_document("tree.xml", TREE).unwrap();
    let closure = transitive_closure("doc('tree.xml')/r/a", "following-sibling::*").unwrap();
    let module = QueryModule {
        functions: vec![],
        variables: vec![],
        body: closure,
    };
    let result = engine.run_module(&module).unwrap();
    assert_eq!(result.result.len(), 1); // only <d>
}

#[test]
fn fixpoint_statistics_are_exposed_per_occurrence() {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids(
            "c.xml",
            "<curriculum>\
               <course code=\"a\"><prerequisites><pre_code>b</pre_code></prerequisites></course>\
               <course code=\"b\"><prerequisites><pre_code>c</pre_code></prerequisites></course>\
               <course code=\"c\"><prerequisites/></course>\
             </curriculum>",
            &["code"],
        )
        .unwrap();
    let query = "for $c in doc('c.xml')/curriculum/course \
                 return count(with $x seeded by $c recurse $x/id(./prerequisites/pre_code))";
    let outcome = engine.run(query).unwrap();
    // One fixpoint execution per course.
    assert_eq!(outcome.fixpoints.len(), 3);
    let counts: Vec<String> = outcome
        .result
        .iter()
        .map(|item| item.as_atomic().unwrap().string_value())
        .collect();
    assert_eq!(counts, vec!["2", "1", "0"]);
}

#[test]
fn auto_strategy_is_per_occurrence_with_mixed_bodies() {
    let mut engine = Engine::new();
    engine.set_seed_in_result(true);
    // One distributive and one non-distributive fixpoint in the same query:
    // Auto runs Delta on the former and Naïve on the latter — one body no
    // longer drags the whole query down.
    let query = "let $seed := <a><b/></a> return \
                 ((with $x seeded by $seed recurse $x/*), \
                  (with $y seeded by $seed recurse if (count($y)) then $y/* else ()))";
    let outcome = engine.run(query).unwrap();
    assert_eq!(outcome.distributivity.len(), 2);
    assert!(outcome.distributivity[0].is_distributive());
    assert!(!outcome.distributivity[1].is_distributive());
    assert_eq!(outcome.occurrences[0].strategy, FixpointStrategy::Delta);
    assert_eq!(outcome.occurrences[1].strategy, FixpointStrategy::Naive);
    // The query-level summary stays conservative.
    assert_eq!(outcome.strategy_used(), FixpointStrategy::Naive);
    // The per-run statistics carry the per-occurrence strategies too.
    use xqy_ifp::eval::FixpointStrategyTag;
    let tags: Vec<_> = outcome.fixpoints.iter().map(|s| s.strategy).collect();
    assert_eq!(
        tags,
        vec![
            Some(FixpointStrategyTag::Delta),
            Some(FixpointStrategyTag::Naive)
        ]
    );
}

#[test]
fn queries_across_multiple_documents() {
    let mut engine = Engine::new();
    engine
        .load_document("a.xml", "<r><x id=\"1\"/></r>")
        .unwrap();
    engine
        .load_document("b.xml", "<r><x id=\"2\"/><x id=\"3\"/></r>")
        .unwrap();
    let outcome = engine
        .run("count(doc('a.xml')//x) + count(doc('b.xml')//x)")
        .unwrap();
    assert_eq!(engine.display(&outcome.result), "3");
}

#[test]
fn display_serializes_nodes_as_xml() {
    let mut engine = Engine::new();
    engine
        .load_document("t.xml", "<r><a k=\"v\">text</a></r>")
        .unwrap();
    let outcome = engine.run("doc('t.xml')/r/a").unwrap();
    assert_eq!(engine.display(&outcome.result), "<a k=\"v\">text</a>");
}

#[test]
fn strategy_accessors_round_trip() {
    let mut engine = Engine::new();
    assert_eq!(engine.strategy(), Strategy::Auto);
    engine.set_strategy(Strategy::Delta);
    assert_eq!(engine.strategy(), Strategy::Delta);
    assert_eq!(Strategy::Naive.name(), "naive");
    assert_eq!(Strategy::Auto.name(), "auto");
}
