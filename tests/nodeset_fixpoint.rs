//! Properties of the `NodeSet`-backed fixpoint kernel:
//!
//! * Naïve and Delta are equivalent on randomly generated *distributive*
//!   recursion bodies — same result **set** and the same do-while
//!   iteration count (on a distributive body both algorithms discover the
//!   same frontier each round, so their `FixpointStats.iterations` agree);
//! * the paper's Example 2.4, where the body is non-distributive and the
//!   two algorithms genuinely differ, is pinned as a golden test down to
//!   the per-algorithm statistics (iterations, nodes fed back);
//! * the bitset [`NodeSet`] agrees with a naive `BTreeSet` model under
//!   arbitrary operation mixes.

use proptest::prelude::*;
use std::collections::BTreeSet;

use xqy_ifp::eval::{Evaluator, FixpointStrategy};
use xqy_ifp::xdm::{NodeId, NodeSet, NodeStore};

/// A curriculum-like document over an arbitrary prerequisite edge list.
fn curriculum_from_edges(courses: usize, edges: &[(usize, usize)]) -> String {
    let mut out = String::from("<curriculum>");
    for i in 0..courses {
        out.push_str(&format!("<course code=\"c{i}\"><prerequisites>"));
        for (from, to) in edges {
            if *from == i {
                out.push_str(&format!("<pre_code>c{}</pre_code>", to % courses));
            }
        }
        out.push_str("</prerequisites></course>");
    }
    out.push_str("</curriculum>");
    out
}

/// Run the transitive-prerequisites IFP under `strategy`, returning the
/// result codes (sorted) and the recorded statistics.
fn run_closure(
    xml: &str,
    seed_course: usize,
    strategy: FixpointStrategy,
) -> (Vec<String>, xqy_ifp::eval::FixpointStats) {
    let mut store = NodeStore::new();
    let doc = store.parse_document_with_uri("c.xml", xml).unwrap();
    store.register_id_attribute(doc, "code");
    let mut evaluator = Evaluator::new(&mut store);
    evaluator.set_fixpoint_strategy(strategy);
    let result = evaluator
        .eval_query_str(&format!(
            "with $x seeded by doc('c.xml')/curriculum/course[@code='c{seed_course}'] \
             recurse $x/id(./prerequisites/pre_code)"
        ))
        .unwrap();
    let stats = evaluator.last_fixpoint_stats().unwrap().clone();
    let mut codes: Vec<String> = result
        .nodes()
        .iter()
        .map(|&n| store.attribute_value(n, "code").unwrap().to_string())
        .collect();
    codes.sort();
    (codes, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.2, exercised empirically: on a distributive body the Delta
    /// algorithm is a safe replacement for Naïve — identical result set and
    /// identical do-while iteration count — while feeding back no more
    /// nodes than Naïve does.
    #[test]
    fn naive_and_delta_agree_on_results_and_iteration_semantics(
        courses in 2usize..12,
        edges in proptest::collection::vec((0usize..11, 0usize..11), 0..33),
        seed_course in 0usize..12,
    ) {
        let xml = curriculum_from_edges(courses, &edges);
        let seed_course = seed_course % courses;
        let (naive_codes, naive_stats) = run_closure(&xml, seed_course, FixpointStrategy::Naive);
        let (delta_codes, delta_stats) = run_closure(&xml, seed_course, FixpointStrategy::Delta);
        prop_assert_eq!(&naive_codes, &delta_codes);
        prop_assert_eq!(
            naive_stats.iterations, delta_stats.iterations,
            "distributive bodies must take the same number of do-while rounds"
        );
        prop_assert_eq!(naive_stats.result_size, delta_stats.result_size);
        prop_assert!(delta_stats.nodes_fed_back <= naive_stats.nodes_fed_back);
    }

    /// The bitset NodeSet is extensionally a set: it agrees with a
    /// `BTreeSet` model under union / except / intersect / equality for
    /// arbitrary operand multisets.
    #[test]
    fn nodeset_matches_btreeset_model(
        children in 1usize..80,
        picks_a in proptest::collection::vec(0usize..80, 0..120),
        picks_b in proptest::collection::vec(0usize..80, 0..120),
    ) {
        let mut xml = String::from("<r>");
        for _ in 0..children {
            xml.push_str("<c/>");
        }
        xml.push_str("</r>");
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let all = store.children(root);
        let a: Vec<NodeId> = picks_a.iter().map(|&i| all[i % all.len()]).collect();
        let b: Vec<NodeId> = picks_b.iter().map(|&i| all[i % all.len()]).collect();

        let sa = NodeSet::from_nodes(a.iter().copied());
        let sb = NodeSet::from_nodes(b.iter().copied());
        let ma: BTreeSet<NodeId> = a.iter().copied().collect();
        let mb: BTreeSet<NodeId> = b.iter().copied().collect();

        prop_assert_eq!(sa.len(), ma.len());
        let union: Vec<NodeId> = sa.union(&sb).iter().collect();
        prop_assert_eq!(union, ma.union(&mb).copied().collect::<Vec<_>>());
        let except: Vec<NodeId> = sa.except(&sb).iter().collect();
        prop_assert_eq!(except, ma.difference(&mb).copied().collect::<Vec<_>>());
        let inter: Vec<NodeId> = sa.intersect(&sb).iter().collect();
        prop_assert_eq!(inter, ma.intersection(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa == sb, ma == mb);
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        // Materialization equals the model's sorted order on a parsed doc.
        prop_assert_eq!(sa.to_vec(&store), ma.iter().copied().collect::<Vec<_>>());
    }
}

/// Example 2.4 / Q2 of the paper: `if (count($x/self::a)) then $x/* else ()`
/// over the seed `(<a/>, <b><c><d/></c></b>)`, with the seed included in the
/// accumulation (the worked table's reading).
const Q2: &str = "let $seed := (<a/>,<b><c><d/></c></b>) \
                  return with $x seeded by $seed \
                  recurse if (count($x/self::a)) then $x/* else ()";

fn run_q2(strategy: FixpointStrategy) -> (usize, xqy_ifp::eval::FixpointStats) {
    let mut store = NodeStore::new();
    let mut evaluator = Evaluator::new(&mut store);
    evaluator.options_mut().seed_in_result = true;
    evaluator.set_fixpoint_strategy(strategy);
    let result = evaluator.eval_query_str(Q2).unwrap();
    (
        result.len(),
        evaluator.last_fixpoint_stats().unwrap().clone(),
    )
}

/// Golden statistics for the paper's worked Example 2.4 table — the case
/// where Naïve and Delta genuinely diverge because the body is not
/// distributive.  Pins the exact iteration counts and the "total number of
/// nodes fed back" the two algorithms incur:
///
/// | algorithm | result          | iterations | fed back            |
/// |-----------|-----------------|------------|---------------------|
/// | Naïve     | (a, b, c, d)    | 3          | 2 + 3 + 4 = 9       |
/// | Delta     | (a, b, c)       | 2          | 2 + 1     = 3       |
#[test]
fn example_2_4_golden_statistics() {
    let (naive_len, naive_stats) = run_q2(FixpointStrategy::Naive);
    assert_eq!(naive_len, 4, "Naïve computes (a, b, c, d)");
    assert_eq!(naive_stats.iterations, 3);
    assert_eq!(naive_stats.nodes_fed_back, 9);
    assert_eq!(naive_stats.payload_calls, 3);
    assert_eq!(naive_stats.result_size, 4);

    let (delta_len, delta_stats) = run_q2(FixpointStrategy::Delta);
    assert_eq!(delta_len, 3, "Delta computes only (a, b, c)");
    assert_eq!(delta_stats.iterations, 2);
    assert_eq!(delta_stats.nodes_fed_back, 3);
    assert_eq!(delta_stats.payload_calls, 2);
    assert_eq!(delta_stats.result_size, 3);
}
