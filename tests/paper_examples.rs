//! Integration tests reproducing the worked examples of the paper
//! (Example 1.1 / Query Q1, Example 2.4 / Query Q2, and the Figure 2/4
//! function templates).

use xqy_ifp::{Engine, Strategy};

const CURRICULUM: &str = r#"<curriculum>
    <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
    <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
    <course code="c3"><prerequisites/></course>
    <course code="c4"><prerequisites/></course>
    <course code="c5"><prerequisites><pre_code>c5</pre_code></prerequisites></course>
</curriculum>"#;

const Q1: &str = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
                  recurse $x/id(./prerequisites/pre_code)";

const Q2: &str = "let $seed := (<a/>,<b><c><d/></c></b>) \
                  return with $x seeded by $seed \
                  recurse if (count($x/self::a)) then $x/* else ()";

fn engine() -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
        .unwrap();
    engine
}

fn codes(engine: &Engine, outcome: &xqy_ifp::QueryOutcome) -> Vec<String> {
    outcome
        .result
        .nodes()
        .iter()
        .map(|&n| {
            engine
                .store()
                .attribute_value(n, "code")
                .unwrap()
                .to_string()
        })
        .collect()
}

#[test]
fn example_1_1_prerequisites_of_c1() {
    // "the course element node with code c1 seeds a computation that
    //  recursively finds all prerequisite courses, direct or indirect."
    let mut engine = engine();
    let outcome = engine.run(Q1).unwrap();
    assert_eq!(codes(&engine, &outcome), vec!["c2", "c3", "c4"]);
}

#[test]
fn figure_2_fix_template_equals_q1() {
    let fix_query = "declare function rec($cs) as node()* { $cs/id(./prerequisites/pre_code) };\n\
         declare function fix($x) as node()* {\n\
           let $res := rec($x) return if (empty($res except $x)) then $x else fix($res union $x)\n\
         };\n\
         let $seed := doc('curriculum.xml')/curriculum/course[@code='c1']\n\
         return fix(rec($seed))";
    let mut engine = engine();
    let via_ifp = engine.run(Q1).unwrap();
    let via_fix = engine.run(fix_query).unwrap();
    assert_eq!(codes(&engine, &via_ifp), codes(&engine, &via_fix));
}

#[test]
fn figure_4_delta_template_equals_q1() {
    let delta_query =
        "declare function rec($cs) as node()* { $cs/id(./prerequisites/pre_code) };\n\
         declare function delta($x, $res) as node()* {\n\
           let $delta := rec($x) except $res\n\
           return if (empty($delta)) then $res else delta($delta, $delta union $res)\n\
         };\n\
         let $seed := doc('curriculum.xml')/curriculum/course[@code='c1']\n\
         return delta(rec($seed), rec($seed))";
    let mut engine = engine();
    let via_ifp = engine.run(Q1).unwrap();
    let via_delta = engine.run(delta_query).unwrap();
    assert_eq!(codes(&engine, &via_ifp), codes(&engine, &via_delta));
}

#[test]
fn example_2_4_naive_vs_delta_divergence() {
    // Under the seed-inclusive reading of the worked example, Naïve yields
    // (a,b,c,d) and Delta only (a,b,c).
    let mut naive_engine = Engine::new();
    naive_engine.set_seed_in_result(true);
    naive_engine.set_strategy(Strategy::Naive);
    let naive = naive_engine.run(Q2).unwrap();
    assert_eq!(naive.result.len(), 4);

    let mut delta_engine = Engine::new();
    delta_engine.set_seed_in_result(true);
    delta_engine.set_strategy(Strategy::Delta);
    let delta = delta_engine.run(Q2).unwrap();
    assert_eq!(delta.result.len(), 3);
}

#[test]
fn q2_is_flagged_non_distributive_by_both_checks() {
    let mut engine = Engine::new();
    engine.set_seed_in_result(true);
    let outcome = engine.run(Q2).unwrap();
    let report = &outcome.distributivity[0];
    assert!(!report.syntactic);
    assert_eq!(report.algebraic, Some(false));
    assert_eq!(report.algebraic_blocked_by.as_deref(), Some("count"));
    // …so Auto must have chosen Naïve, preserving the IFP semantics.
    assert_eq!(
        outcome.strategy_used(),
        xqy_ifp::eval::FixpointStrategy::Naive
    );
}

#[test]
fn q1_is_flagged_distributive_by_both_checks() {
    let mut engine = engine();
    let outcome = engine.run(Q1).unwrap();
    let report = &outcome.distributivity[0];
    assert!(report.syntactic);
    assert_eq!(report.syntactic_rule, "STEP2");
    assert_eq!(report.algebraic, Some(true));
}

#[test]
fn self_referential_course_is_its_own_prerequisite() {
    // The xlinkit consistency check: c5 lists itself, so the closure seeded
    // by c5 contains c5.
    let mut engine = engine();
    let outcome = engine
        .run(
            "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c5'] \
             recurse $x/id(./prerequisites/pre_code)",
        )
        .unwrap();
    assert_eq!(codes(&engine, &outcome), vec!["c5"]);
}

#[test]
fn sql_1999_analogy_prerequisites_without_the_seed_course() {
    // The WITH RECURSIVE example of Section 2 computes exactly the
    // prerequisite set (c1 itself is not part of table P unless reachable).
    let mut engine = engine();
    let outcome = engine.run(Q1).unwrap();
    assert!(!codes(&engine, &outcome).contains(&"c1".to_string()));
}
