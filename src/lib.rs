//! Workspace façade crate.
//!
//! The implementation lives in the `crates/` members; this root package
//! exists so the repository-level integration tests (`tests/`) and examples
//! (`examples/`) have a package to belong to.  It re-exports the public
//! engine API of [`xqy_ifp`] for convenience.

pub use xqy_ifp::*;
