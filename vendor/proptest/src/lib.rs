//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for the real `proptest`.  It keeps the same surface syntax —
//! the [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, [`prop_oneof!`], [`Just`](strategy::Just),
//! integer-range and tuple strategies, and [`collection::vec`] — but with a
//! much simpler engine:
//!
//! * inputs are generated from a fixed-seed deterministic RNG, so every run
//!   explores the same cases (reproducible CI, no persistence files);
//! * there is **no shrinking**: a failing case panics with the generated
//!   values printed, via the standard assertion macros.

use std::ops::Range;

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Something that can generate values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Box the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing always the same (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Uniform choice among boxed strategies of one value type; the
    /// engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Strategy for vectors of values from an element strategy; see
    /// [`collection::vec`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(element: S, size: Range<usize>) -> Self {
            VecStrategy { element, size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let len = if span == 0 {
                self.size.start
            } else {
                self.size.start + (rng.next_u64() % span) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeding every proptest run
    /// identically (reproducible builds; no persistence files).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by [`proptest!`](crate::proptest).
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The shim's `Range<usize>` re-export used in signatures.
pub type SizeRange = Range<usize>;

/// Run each contained `#[test]` function over generated inputs.
///
/// Supported forms (mirroring real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_test(x in 0usize..10, v in proptest::collection::vec(0..3, 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl $cfg; $($rest)*}
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl $crate::test_runner::Config::default(); $($rest)*}
    };
}

/// Assert within a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = ((0usize..4), (1usize..5)).generate(&mut rng);
            assert!(a < 4 && (1..5).contains(&b));
            let v = crate::collection::vec(0usize..7, 0..5).generate(&mut rng);
            assert!(v.len() < 5 && v.iter().all(|&e| e < 7));
        }
    }

    #[test]
    fn oneof_picks_only_listed_values() {
        let strat = prop_oneof![Just("a"), Just("b"), Just("c")];
        let mut rng = TestRng::deterministic();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.iter().all(|s| ["a", "b", "c"].contains(s)));
        assert!(seen.len() >= 2, "union should exercise several arms");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro form itself compiles and runs.
        #[test]
        fn macro_form_runs(x in 0usize..10, ys in crate::collection::vec(0usize..3, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
        }
    }
}
