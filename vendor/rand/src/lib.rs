//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for the real `rand`.  It provides:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges;
//! * [`Rng::gen_bool`] and [`Rng::next_u64`].
//!
//! The generator is SplitMix64: deterministic, fast and statistically fine
//! for synthetic data generation (it is **not** cryptographically secure,
//! which the real `StdRng` is — none of the workloads care).

use std::ops::{Range, RangeInclusive};

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core sampling interface (mirrors the parts of `rand::Rng` in use).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > (1.0 - p)
    }
}

/// Range types [`Rng::gen_range`] accepts (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniform sampling is defined for (mirrors
/// `rand::distributions::uniform::SampleUniform`).  One blanket
/// `SampleRange` impl per range type keeps type inference working the way
/// it does with the real crate (`rng.gen_range(0..100) < some_u32` infers
/// `u32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)` given raw bits.
    fn sample_half_open(start: Self, end: Self, bits: u64) -> Self;
    /// Uniform sample from `[start, end]` given raw bits.
    fn sample_inclusive(start: Self, end: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, bits: u64) -> Self {
                let span = (end - start) as u64;
                start + (bits % span) as $t
            }
            fn sample_inclusive(start: Self, end: Self, bits: u64) -> Self {
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return start + bits as $t;
                }
                start + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..100);
            assert!(y < 100);
            let z: usize = rng.gen_range(1..=2);
            assert!((1..=2).contains(&z));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }
}
