//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! stands in for the real `criterion`.  It supports benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.  Measurement is simple wall-clock timing
//! with automatic iteration-count calibration; each benchmark prints a
//! `name  time: [mean]` line.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! measurement is additionally appended to a JSON report written when the
//! [`Criterion`] value is dropped — this is how the workspace records
//! benchmark baselines (e.g. `BENCH_nodeset.json`) without the real
//! criterion's `--save-baseline` machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/function/value`.
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Benchmark identifier: a function name and a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            function: value.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId {
            function: value,
            parameter: String::new(),
        }
    }
}

/// Runs closures and records timing samples.
pub struct Bencher<'m> {
    sample_size: usize,
    result: &'m mut Option<(f64, f64, usize, u64)>,
}

impl Bencher<'_> {
    /// Measure `f`, calibrating the per-sample iteration count so one
    /// sample takes roughly a millisecond (bounded for slow bodies).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: run once, derive how many iterations fit ~1ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        *self.result = Some((mean, min, samples.len(), iters));
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (mirrors criterion's setting).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full_id = format!("{}/{}", self.name, id.render());
        let mut result = None;
        {
            let mut bencher = Bencher {
                sample_size: self.sample_size,
                result: &mut result,
            };
            f(&mut bencher, input);
        }
        self.criterion.record(full_id, result);
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full_id = format!("{}/{}", self.name, id.into().render());
        let mut result = None;
        {
            let mut bencher = Bencher {
                sample_size: self.sample_size,
                result: &mut result,
            };
            f(&mut bencher);
        }
        self.criterion.record(full_id, result);
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full_id = id.into().render();
        let mut result = None;
        {
            let mut bencher = Bencher {
                sample_size: 10,
                result: &mut result,
            };
            f(&mut bencher);
        }
        self.record(full_id, result);
        self
    }

    fn record(&mut self, id: String, result: Option<(f64, f64, usize, u64)>) {
        let Some((mean_ns, min_ns, samples, iters)) = result else {
            return;
        };
        println!("{id:<60} time: [{}]", format_ns(mean_ns));
        self.measurements.push(Measurement {
            id,
            mean_ns,
            min_ns,
            samples,
            iters_per_sample: iters,
        });
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() || self.measurements.is_empty() {
            return;
        }
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                m.id.replace('"', "'"),
                m.mean_ns,
                m.min_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 == self.measurements.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(err) = std::fs::write(&path, out) {
            eprintln!("criterion shim: could not write {path}: {err}");
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn records_measurements() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        assert_eq!(criterion.measurements().len(), 1);
        let m = &criterion.measurements()[0];
        assert_eq!(m.id, "shim/sum/100");
        assert!(m.mean_ns > 0.0);
        assert_eq!(m.samples, 3);
        criterion.measurements.clear(); // avoid JSON writing side-effects
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
